// Package server is crimsond: Crimson's network face. It exposes the
// repository — tree loading, the §2.2 structure queries, species data,
// query history and benchmark runs — over an HTTP/JSON API so that many
// clients can share one long-lived service, the deployment model the
// paper's demo assumed (a shared data-management service for
// phylogenetics groups) and the layer every scaling PR plugs into.
//
// Concurrency discipline: every read request runs against its own MVCC
// snapshot, pinned lazily per shard — a request touching one tree pins
// only that tree's shard. Snapshot reads are lock-free — they never touch
// a database mutex — so queries proceed at full speed while a bulk load or
// delete is in flight, and each request sees a consistent committed state
// (never a half-loaded or half-deleted tree). A semaphore bounds in-flight
// reads (Config.MaxInFlightReads); excess requests queue. Mutations —
// load, delete, species put — serialize on a per-shard writer mutex: each
// shard is its own storage engine with its own single-writer contract, so
// loads of trees on different shards proceed genuinely in parallel.
// Query-history lives on shard 0; read-path records are drained by an
// async recorder goroutine so recording never puts a read behind any
// writer lock. Repeated projections, LCAs, clades and pattern matches are
// served from a bounded LRU result cache keyed by (tree, version), where a
// tree's version is the shard epoch its current incarnation was committed
// at — entries are immutable by construction, since a reload or delete
// moves the version and strands the old keys.
//
// Every read runs under its request's context: a client that disconnects
// or times out aborts the engine scan cooperatively, the request's
// snapshot pins release immediately (no reclamation backlog behind dead
// requests), and the abort is counted in aborted_reads. Tree export
// streams chunked Newick rather than materializing the serialization, and
// the tree and history listings paginate with limit + opaque cursor.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchmark"
	"repro/internal/core"
	"repro/internal/newick"
	"repro/internal/nexus"
	"repro/internal/obs"
	"repro/internal/queryrepo"
	"repro/internal/recon"
	"repro/internal/relstore"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/species"
	"repro/internal/storage"
	"repro/internal/treecmp"
	"repro/internal/treestore"
)

// Backend bundles the repositories the server exposes. DBs holds one
// relational database per shard; the repositories route tree-scoped
// operations with Router (query history lives on shard 0). A nil Router
// with a single database is normalized to the one-shard layout.
type Backend struct {
	DBs     []*relstore.DB
	Router  *shard.Router
	Trees   *treestore.Store
	Species *species.Repo
	Queries *queryrepo.Repo
	// Follower, when set, marks this server as a read-only replica fed
	// by the given apply loops: writes return 403, reads serve at each
	// shard's last applied epoch, and POST /v1/repl/promote flips the
	// process into a writable primary.
	Follower *repl.Follower
}

// Config tunes the server. The zero value is usable.
type Config struct {
	// Addr is the listen address for Start/ListenAndServe
	// (default ":8321").
	Addr string
	// MaxInFlightReads bounds concurrently executing read requests;
	// excess requests wait for a slot (default 64).
	MaxInFlightReads int
	// ResultCacheSize is the LRU result-cache capacity in entries
	// (default 1024; negative disables caching).
	ResultCacheSize int
	// MaxBodyBytes caps request bodies — tree uploads included
	// (default 256 MiB).
	MaxBodyBytes int64
	// LoadWorkers bounds the ingest pipeline's fan-out — chunked Newick
	// parsing and row staging — per load request (default GOMAXPROCS).
	// Every worker count stores bit-for-bit identical relations.
	LoadWorkers int
	// Logf receives server log lines (nil = silent).
	Logf func(format string, args ...any)
	// Logger receives structured request and slow-query records (nil =
	// fall back to Logf for slow queries, silent otherwise).
	Logger *slog.Logger
	// SlowQueryMS logs any request slower than this many milliseconds
	// together with its full span tree (0 disables). Setting it enables
	// span collection on every request.
	SlowQueryMS int
	// Trace forces span collection on every request, as if each carried
	// ?debug=trace (the span is only echoed in the response when the
	// client actually asks). Off, spans are still collected per request
	// when ?debug=trace or SlowQueryMS asks for them; the engine counters
	// in /metrics are always live.
	Trace bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8321"
	}
	if c.MaxInFlightReads == 0 {
		c.MaxInFlightReads = 64
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 1024
	}
	if c.ResultCacheSize < 0 {
		c.ResultCacheSize = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.LoadWorkers <= 0 {
		c.LoadWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server serves the crimsond HTTP API over one repository.
type Server struct {
	cfg     Config
	be      Backend
	mux     *http.ServeMux
	stats   *serverStats
	cache   *resultCache
	slogger *slog.Logger // nil unless Config.Logger was set
	reqSeq  atomic.Int64 // request-id sequence

	readSem  chan struct{} // bounds in-flight reads
	writeMus []sync.Mutex  // one writer mutex per shard; mutations lock their tree's shard

	// pubs streams each shard's WAL batches to replication subscribers.
	// Publishers exist on every server (they are inert without
	// subscribers), so any primary can feed followers without restart.
	pubs []*repl.Publisher
	// readOnly is true while this server is an unpromoted follower:
	// writes 403, the result cache and version maps stay cold (epochs
	// move under replication without the write path's invalidation
	// hooks), and reads serve at the last applied epoch.
	readOnly  atomic.Bool
	promoteMu sync.Mutex // serializes POST /v1/repl/promote
	// promoteDegraded is set when a promote attempt failed after the
	// stores were already flipped writable: the server still reports as a
	// follower but nothing is replicating. Surfaced in /v1/repl/status;
	// retrying promote clears it.
	promoteDegraded atomic.Bool
	// streamCtx cancels open replication streams at Shutdown —
	// http.Server.Shutdown waits for active requests, and a stream never
	// ends on its own.
	streamCtx    context.Context
	streamCancel context.CancelFunc

	handleMu sync.Mutex
	handles  map[string]epochHandle // per-tree handles, keyed to the epoch they read
	// vers maps each tree to its version: the shard epoch at which the
	// tree's current incarnation was committed (set by the load path) or
	// first observed (seeded by the read path from a current snapshot).
	// Result-cache keys embed the version, so entries are immutable: a
	// reload or delete moves or removes the version and strands old keys.
	vers map[string]uint64

	recCh     chan histRecord // read-path history records, drained async
	recWG     sync.WaitGroup
	recStart  sync.Once    // lazily spawns recordLoop on the first record
	recMu     sync.RWMutex // guards recCh sends against shutdown close
	recClosed bool

	httpSrv *http.Server
	lnMu    sync.Mutex
	ln      net.Listener
}

// epochHandle is a cached tree handle valid only for requests whose
// snapshot reads the same epoch. The requesting snapshot's pin keeps the
// epoch's pages alive while the handle is in use, so serving a cached
// handle is exactly as safe as opening a fresh one.
type epochHandle struct {
	epoch uint64
	tree  *treestore.Tree
}

// histRecord is one deferred query-history append.
type histRecord struct {
	kind    string
	args    any
	summary string
}

// New builds a server over the backend. Call Start, Serve or
// ListenAndServe to accept connections, or use it directly as an
// http.Handler.
func New(be Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if be.Router == nil {
		r, err := shard.NewRouter(len(be.DBs))
		if err != nil {
			panic("server: backend with no databases: " + err.Error())
		}
		be.Router = r
	}
	// Note: the result cache is built at the configured size even for a
	// follower. It stays naturally unused while readOnly — cache lookups
	// are gated on tree versions (vers), which only the write path seeds —
	// and promote() purges it before the new primary starts writing, so a
	// promoted follower regains caching at full size.
	s := &Server{
		cfg:      cfg,
		be:       be,
		mux:      http.NewServeMux(),
		stats:    newServerStats(),
		cache:    newResultCache(cfg.ResultCacheSize),
		readSem:  make(chan struct{}, cfg.MaxInFlightReads),
		writeMus: make([]sync.Mutex, len(be.DBs)),
		handles:  make(map[string]epochHandle),
		vers:     make(map[string]uint64),
		recCh:    make(chan histRecord, 256),
	}
	s.slogger = cfg.Logger
	s.streamCtx, s.streamCancel = context.WithCancel(context.Background())
	s.readOnly.Store(be.Follower != nil)
	s.pubs = make([]*repl.Publisher, len(be.DBs))
	for i, db := range be.DBs {
		s.pubs[i] = repl.NewPublisher(db.Store())
	}
	s.routes()
	s.replRoutes()
	s.httpSrv = &http.Server{Handler: s}
	return s
}

// recordLoop drains read-path history records onto the write path of
// shard 0, where the query history lives. Taking that shard's writer mutex
// keeps history appends (and especially their commits) from interleaving
// with a half-applied load or delete on the same shard; readers themselves
// never wait on it. Commits (which fsync on file-backed stores and publish
// a new epoch) are throttled to once per recCommitBatch records or
// recCommitInterval, whichever comes first, so a steady query stream costs
// at most ~one fsync per second — not one per query. Records not yet
// committed become durable at the next write endpoint's commit or at
// Shutdown.
func (s *Server) recordLoop() {
	defer s.recWG.Done()
	const (
		recCommitBatch    = 64
		recCommitInterval = time.Second
	)
	recordOne := func(rec histRecord) {
		if _, err := s.be.Queries.Record(rec.kind, rec.args, rec.summary); err != nil {
			s.logf("crimsond: recording %s query: %v", rec.kind, err)
		}
	}
	// capture snapshots the pending records' transaction under the shard-0
	// writer mutex; wait awaits its durability after the mutex is released,
	// so the recorder's fsync coalesces with concurrent write endpoints.
	capture := func() *relstore.CommitWaiter { return s.be.DBs[0].CommitAsync() }
	wait := func(w *relstore.CommitWaiter) {
		if w == nil {
			return
		}
		start := time.Now()
		err := w.Wait()
		s.observeCommitWaiter(context.Background(), w, time.Since(start))
		if err != nil {
			s.logf("crimsond: committing history batch: %v", err)
		}
	}
	pending := 0
	lastCommit := time.Now()
	var flush <-chan time.Time // armed while records await commit
	for {
		select {
		case rec, ok := <-s.recCh:
			if !ok {
				if pending > 0 {
					s.writeMus[0].Lock()
					w := capture()
					s.writeMus[0].Unlock()
					wait(w)
				}
				return
			}
			var w *relstore.CommitWaiter
			s.writeMus[0].Lock()
			recordOne(rec)
			pending++
		drain:
			for pending < 4*recCommitBatch {
				select {
				case more, moreOK := <-s.recCh:
					if !moreOK {
						break drain
					}
					recordOne(more)
					pending++
				default:
					break drain
				}
			}
			if pending >= recCommitBatch || time.Since(lastCommit) >= recCommitInterval {
				w = capture()
				pending = 0
				lastCommit = time.Now()
				flush = nil
			} else if flush == nil {
				flush = time.After(recCommitInterval)
			}
			s.writeMus[0].Unlock()
			wait(w)
		case <-flush:
			flush = nil
			if pending > 0 {
				s.writeMus[0].Lock()
				w := capture()
				s.writeMus[0].Unlock()
				pending = 0
				lastCommit = time.Now()
				wait(w)
			}
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		s.stats.countRequest("stats")
		start := time.Now()
		snap := s.snapshot()
		writeJSON(w, http.StatusOK, snap)
		s.stats.observeOp("stats", time.Since(start))
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, metricsText(s.snapshot(), s.stats.histSnapshots()))
	})
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	s.mux.HandleFunc("GET /v1/trees", s.read("trees", s.handleTrees))
	s.mux.HandleFunc("POST /v1/trees/{name}", s.write("load", s.handleLoad))
	s.mux.HandleFunc("GET /v1/trees/{name}", s.read("info", s.handleInfo))
	s.mux.HandleFunc("DELETE /v1/trees/{name}", s.write("delete", s.handleDelete))
	s.mux.HandleFunc("GET /v1/trees/{name}/project", s.read("project", s.handleProject))
	s.mux.HandleFunc("GET /v1/trees/{name}/lca", s.read("lca", s.handleLCA))
	s.mux.HandleFunc("GET /v1/trees/{name}/sample", s.read("sample", s.handleSample))
	s.mux.HandleFunc("GET /v1/trees/{name}/clade", s.read("clade", s.handleClade))
	s.mux.HandleFunc("POST /v1/trees/{name}/match", s.read("match", s.handleMatch))
	s.mux.HandleFunc("POST /v1/trees/{name}/bench", s.read("bench", s.handleBench))
	s.mux.HandleFunc("GET /v1/trees/{name}/export", s.readStream("export", s.handleExport))

	s.mux.HandleFunc("PUT /v1/trees/{name}/species/{sp}/{kind}", s.write("species_put", s.handleSpeciesPut))
	s.mux.HandleFunc("GET /v1/trees/{name}/species/{sp}/{kind}", s.readText("species_get", s.handleSpeciesGet))
	s.mux.HandleFunc("DELETE /v1/trees/{name}/species/{sp}/{kind}", s.write("species_delete", s.handleSpeciesDelete))
	s.mux.HandleFunc("GET /v1/trees/{name}/species/{sp}", s.read("species_list", s.handleSpeciesList))

	s.mux.HandleFunc("GET /v1/history", s.read("history", s.handleHistory))
	s.mux.HandleFunc("GET /v1/history/{id}", s.read("history_get", s.handleHistoryGet))
}

// ServeHTTP makes the server usable as a plain http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// Start listens on Config.Addr and serves in the background, returning
// once the listener is bound (so Addr reports the real port, ephemeral
// ports included).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logf("crimsond: serve: %v", err)
		}
	}()
	s.logf("crimsond: listening on %s", ln.Addr())
	return nil
}

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	return s.httpSrv.Serve(ln)
}

// ListenAndServe listens on Config.Addr and blocks until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound listen address ("" before Start/Serve).
func (s *Server) Addr() string {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully drains in-flight requests and the async history
// recorder, then commits every shard so buffered query-history records
// (and any other pending pages) reach the page files.
func (s *Server) Shutdown(ctx context.Context) error {
	s.streamCancel() // unhook replication streams so Shutdown can drain
	err := s.httpSrv.Shutdown(ctx)
	for _, p := range s.pubs {
		p.Close()
	}
	s.recMu.Lock()
	if !s.recClosed {
		s.recClosed = true
		close(s.recCh)
	}
	s.recMu.Unlock()
	s.recWG.Wait()
	// Capture every shard's final transaction first, then wait on all of
	// them together: the shards' WAL fsyncs run concurrently instead of
	// back to back.
	waiters := make([]*relstore.CommitWaiter, len(s.be.DBs))
	for i := range s.be.DBs {
		s.writeMus[i].Lock()
		waiters[i] = s.be.DBs[i].CommitAsync()
		s.writeMus[i].Unlock()
	}
	errs := make([]error, len(waiters))
	var wg sync.WaitGroup
	for i, w := range waiters {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Wait()
		}()
	}
	wg.Wait()
	for i, cerr := range errs {
		if err == nil && cerr != nil {
			err = fmt.Errorf("committing shard %d: %w", i, cerr)
		}
	}
	return err
}

func (s *Server) snapshot() StatsSnapshot {
	s.handleMu.Lock()
	open := len(s.handles)
	s.handleMu.Unlock()
	st := s.stats.snapshot(s.cache.len(), open)
	st.LoadWorkers = s.cfg.LoadWorkers
	st.Shards = make([]ShardMVCC, len(s.be.DBs))
	for i, db := range s.be.DBs {
		mv := db.MVCC()
		backlog, wal := db.CheckpointBacklog(), db.WALSize()
		st.Epoch += mv.Epoch
		st.OpenSnapshots += mv.OpenSnapshots
		st.PendingReclaimPages += mv.PendingReclaimPages
		st.CheckpointBacklogBytes += backlog
		st.WALBytes += wal
		st.Shards[i] = ShardMVCC{
			Shard:                  i,
			Epoch:                  mv.Epoch,
			OpenSnapshots:          mv.OpenSnapshots,
			PendingReclaimPages:    mv.PendingReclaimPages,
			CheckpointBacklogBytes: backlog,
			WALBytes:               wal,
		}
	}
	rs := s.replStatus()
	st.Repl = &rs
	if gb := obs.GroupBatch.Snapshot(); gb.Count > 0 {
		st.GroupCommit = &GroupCommitStats{
			Batches:  gb.Count,
			Commits:  gb.SumNS / int64(time.Microsecond),
			AvgBatch: float64(gb.SumNS) / float64(time.Microsecond) / float64(gb.Count),
			P50Batch: gb.Quantile(0.50) * 1e6,
			P95Batch: gb.Quantile(0.95) * 1e6,
		}
	}
	return st
}

// reqSnap is the per-request MVCC view: at most one relational snapshot
// per shard, pinned lazily so a request touching a single tree pins only
// that tree's shard. It is opened by the read wrappers and closed when the
// request finishes.
type reqSnap struct {
	s   *Server
	sns []*relstore.Snap // indexed by shard; nil until first touched
}

func (s *Server) openSnap() *reqSnap {
	return &reqSnap{s: s, sns: make([]*relstore.Snap, len(s.be.DBs))}
}

// shard pins (once) and returns the snapshot of shard i. A reqSnap serves
// one request goroutine, so no locking is needed.
func (sn *reqSnap) shard(i int) *relstore.Snap {
	if sn.sns[i] == nil {
		sn.sns[i] = sn.s.be.DBs[i].Snapshot()
	}
	return sn.sns[i]
}

// forTree returns the pinned snapshot of the shard owning the named tree,
// along with the shard index.
func (sn *reqSnap) forTree(name string) (*relstore.Snap, int) {
	i := sn.s.be.Router.Place(name)
	return sn.shard(i), i
}

// treeSnap pins every shard and returns the merged tree-repository view
// (used by cross-shard reads like the tree listing).
func (sn *reqSnap) treeSnap() *treestore.Snap {
	for i := range sn.sns {
		sn.shard(i)
	}
	return treestore.SnapOnShards(sn.sns, sn.s.be.Router)
}

func (sn *reqSnap) close() {
	for _, rs := range sn.sns {
		if rs != nil {
			rs.Close()
		}
	}
}

// treeVer reports the tree's version — the shard epoch its current
// incarnation was committed at — and whether a request whose shard
// snapshot reads epoch ep may use the result cache. A request older than
// the current incarnation must bypass the cache entirely: it sees (and
// must serve) a previous incarnation.
func (s *Server) treeVer(name string, ep uint64) (uint64, bool) {
	s.handleMu.Lock()
	defer s.handleMu.Unlock()
	ver, known := s.vers[name]
	return ver, known && ep >= ver
}

// tree returns a handle on a stored tree as of the request's snapshot,
// reusing the cached handle whenever it reads the same version of the
// tree — tree relations are immutable between loads, so any handle opened
// at or after the version epoch sees identical content, and the request's
// snapshot pin keeps the version's pages alive while the handle is in
// use. On a miss the fresh handle is cached, and trees loaded before the
// server started have their version seeded here — but only from a
// snapshot reading the shard's current published epoch, so a reader
// holding a pre-delete snapshot can never resurrect a dead tree's version
// (dropTree runs strictly after the delete publishes).
func (s *Server) tree(sn *reqSnap, name string) (*treestore.Tree, error) {
	rs, si := sn.forTree(name)
	if s.readOnly.Load() {
		// On a follower, epochs advance under replication without
		// bumpTree/dropTree running, so the handle and version maps
		// would go stale silently. Open fresh against the snapshot;
		// promote purges the maps before re-enabling them.
		return treestore.SnapOn(rs).Tree(name)
	}
	ep := rs.Epoch()
	s.handleMu.Lock()
	h, ok := s.handles[name]
	ver, known := s.vers[name]
	s.handleMu.Unlock()
	if ok && (h.epoch == ep || (known && h.epoch >= ver && ep >= ver)) {
		return h.tree, nil
	}
	t, err := treestore.SnapOn(rs).Tree(name)
	if err != nil {
		return nil, err
	}
	s.handleMu.Lock()
	if _, k := s.vers[name]; !k && s.be.DBs[si].MVCC().Epoch == ep {
		s.vers[name] = ep
	}
	if v, k := s.vers[name]; k && ep >= v {
		if cur, ok := s.handles[name]; !ok || cur.epoch < ep {
			s.handles[name] = epochHandle{epoch: ep, tree: t}
		}
	}
	s.handleMu.Unlock()
	return t, nil
}

// cachePut inserts a computed result under its (tree, version) key. The
// entry is immutable by construction — the key names one incarnation of
// the tree, and the caller proved its snapshot reads that incarnation
// (ep >= ver) — so unrelated commits on the shard are irrelevant and no
// epoch freshness check is needed. The one guard left: the version must
// still be current, so entries for a just-deleted tree are not
// re-inserted after dropTree purged them (they would be unreachable
// anyway, but would sit in the LRU until evicted).
func (s *Server) cachePut(name string, ver uint64, key string, val any) {
	s.handleMu.Lock()
	defer s.handleMu.Unlock()
	if v, ok := s.vers[name]; ok && v == ver {
		s.cache.put(key, val)
	}
}

// bumpTree installs a freshly loaded tree's version (the shard epoch its
// load published at) and drops whatever handle or cached results a
// previous incarnation under the same name left behind. Called by the load
// path after its final commit on the tree's shard.
func (s *Server) bumpTree(name string, si int) {
	ep := s.be.DBs[si].MVCC().Epoch
	s.handleMu.Lock()
	defer s.handleMu.Unlock()
	delete(s.handles, name)
	s.vers[name] = ep
	s.cache.invalidateTree(name)
}

// dropTree removes a deleted tree's version, handle and cached results.
// Called by the delete path after the delete has committed.
func (s *Server) dropTree(name string) {
	s.handleMu.Lock()
	defer s.handleMu.Unlock()
	delete(s.handles, name)
	delete(s.vers, name)
	s.cache.invalidateTree(name)
}

// commitShard commits shard si synchronously, recording the commit's
// latency in the commit histogram and, when the calling request is traced,
// as a "commit" child span with the durability pipeline's stage breakdown.
func (s *Server) commitShard(ctx context.Context, si int) error {
	start := time.Now()
	w := s.be.DBs[si].CommitAsync()
	err := w.Wait()
	s.observeCommitWaiter(ctx, w, time.Since(start))
	return err
}

// observeCommitWaiter records one awaited commit: total latency in the
// commit histogram plus, on traced requests, the pipeline stages as child
// spans — "wal_append" (the WAL write+fsync the commit rode in),
// "group_wait" (time queued behind the group-commit leader) and
// "checkpoint" (an inline backpressure checkpoint, when one ran).
func (s *Server) observeCommitWaiter(ctx context.Context, w *relstore.CommitWaiter, d time.Duration) {
	s.stats.observeCommit(d)
	sp := obs.SpanFrom(ctx)
	if sp == nil {
		return
	}
	sp.AddTimed("commit", d)
	wal := w.WALTime()
	ckpt := w.CheckpointTime()
	if wal > 0 {
		sp.AddTimed("wal_append", wal)
	}
	if gw := d - wal - ckpt; gw > 0 && w.BatchSize() > 0 {
		sp.AddTimed("group_wait", gw)
	}
	if ckpt > 0 {
		sp.AddTimed("checkpoint", ckpt)
	}
}

// commitCollector gathers commits captured while a shard's writer mutex is
// held; the write wrapper awaits their durability after the mutex is
// released. That window — transaction captured, lock released, fsync
// pending — is what lets concurrent write requests coalesce into one WAL
// flush (group commit).
type commitCollector struct {
	s       *Server
	waiters []*relstore.CommitWaiter
}

// commitAsync captures shard si's pending transaction now. Durability is
// awaited by the write wrapper.
func (cc *commitCollector) commitAsync(si int) {
	cc.waiters = append(cc.waiters, cc.s.be.DBs[si].CommitAsync())
}

// wait blocks until every collected commit is durable and returns the
// first error.
func (cc *commitCollector) wait(ctx context.Context) error {
	var firstErr error
	for _, w := range cc.waiters {
		start := time.Now()
		err := w.Wait()
		cc.s.observeCommitWaiter(ctx, w, time.Since(start))
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- handler plumbing ------------------------------------------------------

// opCtx is one request's observability state: its id, latency clock and
// (when tracing is on for this request) the root span installed into the
// request context.
type opCtx struct {
	op    string
	rid   string
	start time.Time
	root  *obs.Span // nil when this request is not traced
	debug bool      // client asked for ?debug=trace
}

// beginOp starts per-request observability. A root span is collected
// when the client asks (?debug=trace) or the server is configured to
// (Trace, or a slow-query threshold that may need the tree); otherwise
// the request runs on the nil-span fast path and only the process-global
// engine counters tick.
func (s *Server) beginOp(op string, w http.ResponseWriter, r *http.Request) (*http.Request, *opCtx) {
	oc := &opCtx{op: op, start: time.Now()}
	oc.debug = r.URL.Query().Get("debug") == "trace"
	oc.rid = "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
	w.Header().Set("X-Request-Id", oc.rid)
	s.setEpochHeader(w)
	if oc.debug || s.cfg.Trace || s.cfg.SlowQueryMS > 0 {
		oc.root = obs.NewRoot(op)
		r = r.WithContext(obs.ContextWithSpan(r.Context(), oc.root))
	}
	return r, oc
}

// endOp closes the request's observability: records the op latency
// histogram, ends the span, and emits the slow-query and structured
// request logs. It returns the span summary when ?debug=trace asked for
// it (nil otherwise).
func (s *Server) endOp(oc *opCtx, err error) *obs.SpanSummary {
	d := time.Since(oc.start)
	s.stats.observeOp(oc.op, d)
	oc.root.End()
	ms := float64(d) / float64(time.Millisecond)
	slow := s.cfg.SlowQueryMS > 0 && d >= time.Duration(s.cfg.SlowQueryMS)*time.Millisecond
	var sum *obs.SpanSummary
	if oc.debug || slow {
		sum = oc.root.Summary()
	}
	if slow {
		tree, _ := json.Marshal(sum)
		if s.slogger != nil {
			s.slogger.Warn("slow query", "op", oc.op, "req_id", oc.rid,
				"duration_ms", ms, "trace", json.RawMessage(tree))
		} else {
			s.logf("crimsond: slow %s req=%s %.1fms trace=%s", oc.op, oc.rid, ms, tree)
		}
	} else if s.slogger != nil {
		if err != nil {
			s.slogger.Info("request", "op", oc.op, "req_id", oc.rid, "duration_ms", ms, "err", err.Error())
		} else {
			s.slogger.Debug("request", "op", oc.op, "req_id", oc.rid, "duration_ms", ms)
		}
	}
	if !oc.debug {
		return nil
	}
	return sum
}

// injectTrace embeds the span summary into a JSON-object response body
// under a "trace" key; non-object payloads are wrapped instead.
func injectTrace(v any, sum *obs.SpanSummary) any {
	b, err := json.Marshal(v)
	if err != nil {
		return v
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil || m == nil {
		return map[string]any{"result": json.RawMessage(b), "trace": sum}
	}
	m["trace"] = sum
	return m
}

// writeFunc is a mutation handler; it runs under its tree's shard writer
// mutex against the live repository. si is the shard index the wrapper
// locked. Handlers whose commit need not publish before their response is
// assembled (species and history writes) register it on cc instead of
// committing inline; the wrapper waits for durability after the shard
// mutex is released.
type writeFunc func(r *http.Request, si int, cc *commitCollector) (any, error)

// readFunc is a query handler; it runs against the request's own MVCC
// snapshot and takes no repository lock.
type readFunc func(r *http.Request, sn *reqSnap) (any, error)

// statusClientClosedRequest is the non-standard (nginx-convention) status
// for requests whose client went away; the response is almost certainly
// unwritable, but the code keeps logs and tests unambiguous.
const statusClientClosedRequest = 499

// abortedByClient reports whether err means the request's own context
// ended the read — the client disconnected or its deadline passed —
// rather than the query failing on its merits.
func abortedByClient(r *http.Request, err error) bool {
	if err == nil || r.Context().Err() == nil {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// read wraps a query handler: count it, take a read slot (bounded
// in-flight), pin a snapshot, run under the request context, encode. A nil
// result encodes as 204 No Content. The snapshot closes when the handler
// returns — on cancellation the engine scans abort cooperatively, so a
// disconnected client's epoch pins are released promptly instead of riding
// out the full query.
func (s *Server) read(op string, fn readFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.countRequest(op)
		r, oc := s.beginOp(op, w, r)
		if err := s.awaitMinEpoch(r); err != nil {
			s.endOp(oc, err)
			s.fail(w, errStatus(err), err)
			return
		}
		select {
		case s.readSem <- struct{}{}:
		case <-r.Context().Done():
			s.endOp(oc, errors.New("server overloaded"))
			s.fail(w, http.StatusServiceUnavailable, errors.New("server overloaded"))
			return
		}
		s.stats.inFlightReads.Add(1)
		defer func() {
			s.stats.inFlightReads.Add(-1)
			<-s.readSem
		}()
		sn := s.openSnap()
		defer sn.close()
		v, err := fn(r, sn)
		sum := s.endOp(oc, err)
		if abortedByClient(r, err) {
			s.countAborted(op, err)
			s.fail(w, statusClientClosedRequest, err)
			return
		}
		if err == nil && sum != nil && v != nil {
			v = injectTrace(v, sum)
		}
		s.finish(w, v, err)
	}
}

func (s *Server) countAborted(op string, err error) {
	s.stats.abortedReads.Add(1)
	s.logf("crimsond: %s aborted by client: %v", op, err)
}

// write wraps a mutation handler: one writer at a time per shard. Every
// write endpoint is tree-scoped ({name} in the route), so the wrapper
// routes the request to its shard and locks only that shard's writer
// mutex — mutations on different shards run in parallel while each shard's
// storage engine keeps its single-writer contract.
func (s *Server) write(op string, fn writeFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.countRequest(op)
		r, oc := s.beginOp(op, w, r)
		if s.readOnly.Load() {
			err := &httpErr{status: http.StatusForbidden,
				msg: "this server is a read-only replica; send writes to the primary or promote it"}
			s.endOp(oc, err)
			s.fail(w, errStatus(err), err)
			return
		}
		si := s.be.Router.Place(r.PathValue("name"))
		cc := &commitCollector{s: s}
		s.writeMus[si].Lock()
		v, err := fn(r, si, cc)
		s.writeMus[si].Unlock()
		// Await collected commits outside the shard mutex: the next writer
		// may already be preparing, and its flush coalesces with ours.
		if werr := cc.wait(r.Context()); werr != nil && err == nil {
			v, err = nil, werr
		}
		sum := s.endOp(oc, err)
		if err == nil && sum != nil && v != nil {
			v = injectTrace(v, sum)
		}
		s.finish(w, v, err)
	}
}

// readText wraps a query handler that produces a plain-text body.
func (s *Server) readText(op string, fn func(r *http.Request, sn *reqSnap) (string, string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.countRequest(op)
		r, oc := s.beginOp(op, w, r)
		if err := s.awaitMinEpoch(r); err != nil {
			s.endOp(oc, err)
			s.fail(w, errStatus(err), err)
			return
		}
		select {
		case s.readSem <- struct{}{}:
		case <-r.Context().Done():
			s.endOp(oc, errors.New("server overloaded"))
			s.fail(w, http.StatusServiceUnavailable, errors.New("server overloaded"))
			return
		}
		s.stats.inFlightReads.Add(1)
		defer func() {
			s.stats.inFlightReads.Add(-1)
			<-s.readSem
		}()
		sn := s.openSnap()
		defer sn.close()
		body, contentType, err := fn(r, sn)
		s.endOp(oc, err)
		if abortedByClient(r, err) {
			s.countAborted(op, err)
			s.fail(w, statusClientClosedRequest, err)
			return
		}
		if err != nil {
			s.fail(w, errStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", contentType)
		io.WriteString(w, body)
	}
}

// startedWriter tracks whether a streaming handler has begun writing its
// body, which decides whether an error can still become a JSON error
// response or must abort the connection.
type startedWriter struct {
	http.ResponseWriter
	started bool
}

func (sw *startedWriter) WriteHeader(status int) {
	sw.started = true
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *startedWriter) Write(p []byte) (int, error) {
	sw.started = true
	return sw.ResponseWriter.Write(p)
}

// readStream wraps a query handler that streams its own response body
// (chunked export). The handler runs under the request context with a
// pinned snapshot, exactly like read; results flow to the client as they
// are produced instead of materializing server-side. An error before the
// first byte becomes a normal JSON error response; an error mid-stream —
// client disconnect included — kills the connection so the client sees
// truncation rather than a clean end of body.
func (s *Server) readStream(op string, fn func(r *http.Request, sn *reqSnap, w http.ResponseWriter) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.countRequest(op)
		r, oc := s.beginOp(op, w, r)
		if err := s.awaitMinEpoch(r); err != nil {
			s.endOp(oc, err)
			s.fail(w, errStatus(err), err)
			return
		}
		select {
		case s.readSem <- struct{}{}:
		case <-r.Context().Done():
			s.endOp(oc, errors.New("server overloaded"))
			s.fail(w, http.StatusServiceUnavailable, errors.New("server overloaded"))
			return
		}
		s.stats.inFlightReads.Add(1)
		defer func() {
			s.stats.inFlightReads.Add(-1)
			<-s.readSem
		}()
		sn := s.openSnap()
		defer sn.close()
		sw := &startedWriter{ResponseWriter: w}
		err := fn(r, sn, sw)
		s.endOp(oc, err)
		if err == nil {
			return
		}
		aborted := abortedByClient(r, err)
		if aborted {
			s.countAborted(op, err)
		}
		if !sw.started {
			if aborted {
				s.fail(w, statusClientClosedRequest, err)
			} else {
				s.fail(w, errStatus(err), err)
			}
			return
		}
		s.logf("crimsond: %s stream cut mid-body: %v", op, err)
		s.stats.errors.Add(1)
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) finish(w http.ResponseWriter, v any, err error) {
	// Refresh the epoch header stamped at beginOp: a write has published
	// a new epoch since, and a min-epoch wait may have ridden out applies.
	s.setEpochHeader(w)
	if err != nil {
		s.fail(w, errStatus(err), err)
		return
	}
	if v == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.stats.errors.Add(1)
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// httpErr carries an explicit status (bad parameters and the like).
type httpErr struct {
	status int
	msg    string
}

func (e *httpErr) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpErr{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errStatus(err error) int {
	var he *httpErr
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, treestore.ErrNoTree), errors.Is(err, treestore.ErrNoNode),
		errors.Is(err, species.ErrNoData), errors.Is(err, queryrepo.ErrNoEntry):
		return http.StatusNotFound
	case errors.Is(err, treestore.ErrTreeExists):
		return http.StatusConflict
	case errors.Is(err, storage.ErrSnapshotInvalidated):
		// A replica apply invalidated the request's snapshot mid-read.
		// 409 is what the client failover path retries against another
		// base (typically the primary).
		return http.StatusConflict
	case errors.Is(err, treestore.ErrBadName), errors.Is(err, species.ErrBadKey),
		errors.Is(err, newick.ErrSyntax):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func infoJSON(i treestore.TreeInfo) TreeInfo {
	return TreeInfo{Name: i.Name, Nodes: i.Nodes, Leaves: i.Leaves, F: i.F, Layers: i.Layers, Depth: i.Depth}
}

func nodeJSON(n treestore.Node) Node {
	return Node{ID: n.ID, Parent: n.Parent, Name: n.Name, Length: n.Length,
		Depth: n.Depth, Dist: n.Dist, Leaf: n.Leaf, Size: n.Size}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("bad %s=%q: %v", key, raw, err)
	}
	return v, nil
}

func queryInt64(r *http.Request, key string, def int64) (int64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, badRequest("bad %s=%q: %v", key, raw, err)
	}
	return v, nil
}

// recordWrite appends a mutation's history record on shard 0 and captures
// its commit on cc (awaited by the write wrapper after every mutex drops).
// The caller holds shard si's writer mutex; when the history shard is a
// different one, its mutex is taken here — capturing a commit on a shard
// requires its writer lock, or a concurrent history commit could capture
// another load's half-applied tables. Lock order is safe: shard 0's mutex
// is only ever acquired bare or after another shard's, never the other way.
func (s *Server) recordWrite(cc *commitCollector, si int, kind string, args any, summary string) error {
	if si != 0 {
		s.writeMus[0].Lock()
		defer s.writeMus[0].Unlock()
	}
	if _, err := s.be.Queries.Record(kind, args, summary); err != nil {
		s.logf("crimsond: recording %s query: %v", kind, err)
	}
	cc.commitAsync(0)
	return nil
}

// recordAsync enqueues a read-path history record for the recorder
// goroutine. Read handlers must never touch the write path themselves — a
// bulk load in flight would stall them — so the append happens later,
// off the request's latency path. A full queue drops the record (counted
// in stats) rather than block a reader. The recorder goroutine spawns
// lazily on the first record, so a Server used as a bare http.Handler
// and never queried leaks nothing; once queries have flowed, Shutdown is
// what stops the recorder.
func (s *Server) recordAsync(kind string, args any, summary string) {
	if s.readOnly.Load() {
		return // a replica's history is replicated, not locally written
	}
	s.recMu.RLock()
	defer s.recMu.RUnlock()
	if s.recClosed {
		return
	}
	s.recStart.Do(func() {
		s.recWG.Add(1)
		go s.recordLoop()
	})
	select {
	case s.recCh <- histRecord{kind: kind, args: args, summary: summary}:
	default:
		s.stats.historyDropped.Add(1)
	}
}

// --- pagination cursors ----------------------------------------------------

// Cursors are opaque to clients: base64url over a versioned "<kind>:<pos>"
// payload, where pos is the resume position of the underlying scan — the
// last tree name for /v1/trees (the shard-merge resume point), the
// oldest-returned history id for /v1/history. The kind tag keeps a cursor
// from one endpoint from being replayed against another.
const (
	treeCursorKind    = "t1"
	historyCursorKind = "h1"
)

func encodeCursor(kind, pos string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(kind + ":" + pos))
}

func decodeCursor(kind, cursor string) (string, error) {
	if cursor == "" {
		return "", nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil {
		return "", badRequest("bad cursor: %v", err)
	}
	pos, ok := strings.CutPrefix(string(raw), kind+":")
	if !ok {
		return "", badRequest("cursor does not belong to this endpoint")
	}
	return pos, nil
}

// --- tree handlers ---------------------------------------------------------

// handleTrees lists stored trees. With limit and/or cursor it pages: each
// page resumes the name-sorted shard merge from where the previous one
// stopped, reading only what the page needs from each shard. Without
// either parameter it returns the full listing, as before.
func (s *Server) handleTrees(r *http.Request, sn *reqSnap) (any, error) {
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		return nil, err
	}
	if limit < 0 {
		return nil, badRequest("bad limit %d: must be >= 0", limit)
	}
	after, err := decodeCursor(treeCursorKind, r.URL.Query().Get("cursor"))
	if err != nil {
		return nil, err
	}
	infos, next, err := sn.treeSnap().TreesPage(r.Context(), after, limit)
	if err != nil {
		return nil, err
	}
	resp := TreesResponse{Trees: make([]TreeInfo, len(infos))}
	for i, info := range infos {
		resp.Trees[i] = infoJSON(info)
	}
	if next != "" {
		resp.NextCursor = encodeCursor(treeCursorKind, next)
	}
	return resp, nil
}

func (s *Server) handleInfo(r *http.Request, sn *reqSnap) (any, error) {
	t, err := s.tree(sn, r.PathValue("name"))
	if err != nil {
		return nil, err
	}
	return infoJSON(t.Info()), nil
}

// handleLoad stores a tree posted as a Newick or NEXUS body. The body
// streams through the parser for NEXUS; Newick is read whole (the
// grammar needs the full string) but still bounded by MaxBodyBytes.
func (s *Server) handleLoad(r *http.Request, si int, cc *commitCollector) (any, error) {
	name := r.PathValue("name")
	f, err := queryInt(r, "f", core.DefaultFanout)
	if err != nil {
		return nil, err
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "newick"
	}
	progress := func(msg string) { s.logf("crimsond: load %s: %s", name, msg) }

	resp := LoadResponse{}
	var metrics treestore.LoadMetrics
	opts := treestore.LoadOptions{Workers: s.cfg.LoadWorkers, Metrics: &metrics}
	var parseNS int64
	switch format {
	case "newick":
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			return nil, badRequest("reading body: %v", err)
		}
		parseStart := time.Now()
		t, err := newick.ParseWorkers(string(raw), s.cfg.LoadWorkers)
		if err != nil {
			return nil, err
		}
		parseNS = time.Since(parseStart).Nanoseconds()
		st, err := s.be.Trees.LoadOpts(name, t, f, opts, progress)
		if err != nil {
			return nil, err
		}
		resp.Tree = infoJSON(st.Info())
	case "nexus":
		parseStart := time.Now()
		doc, err := nexus.Parse(r.Body)
		if err != nil {
			return nil, badRequest("parsing NEXUS: %v", err)
		}
		parseNS = time.Since(parseStart).Nanoseconds()
		if len(doc.Trees) == 0 {
			return nil, badRequest("NEXUS document has no trees")
		}
		st, err := s.be.Trees.LoadOpts(name, doc.Trees[0].Tree, f, opts, progress)
		if err != nil {
			return nil, err
		}
		resp.Tree = infoJSON(st.Info())
		if ch := doc.Characters; ch != nil {
			for _, taxon := range ch.Order {
				if err := s.be.Species.Put(name, taxon, "seq:nexus", []byte(ch.Seqs[taxon])); err != nil {
					// Compensate: don't leave a half-loaded tree behind
					// (Load already committed the tree relations).
					if derr := s.be.Trees.Delete(name); derr != nil {
						s.logf("crimsond: rolling back partial load of %s: %v", name, derr)
					}
					if _, derr := s.be.Species.DeleteTree(name); derr != nil {
						s.logf("crimsond: rolling back sequences of %s: %v", name, derr)
					}
					return nil, err
				}
			}
			resp.Sequences = len(ch.Order)
		}
	default:
		return nil, badRequest("unknown format %q (want newick or nexus)", format)
	}
	// Commit the tree's shard (sequences from a NEXUS body land there too),
	// then publish the new incarnation's version to the caches.
	if err := s.commitShard(r.Context(), si); err != nil {
		return nil, err
	}
	s.stats.countLoad(parseNS, metrics)
	if sp := obs.SpanFrom(r.Context()); sp != nil {
		sp.AddTimed("parse", time.Duration(parseNS))
		sp.AddTimed("index", time.Duration(metrics.IndexNS))
		sp.AddTimed("stage", time.Duration(metrics.StageNS))
		sp.AddTimed("insert", time.Duration(metrics.InsertNS))
	}
	s.bumpTree(name, si)
	return resp, s.recordWrite(cc, si, "load",
		map[string]any{"tree": name, "f": f, "nodes": resp.Tree.Nodes},
		fmt.Sprintf("loaded %d nodes", resp.Tree.Nodes))
}

func (s *Server) handleDelete(r *http.Request, si int, cc *commitCollector) (any, error) {
	name := r.PathValue("name")
	if err := s.be.Trees.Delete(name); err != nil {
		return nil, err
	}
	// The delete is committed and published at this point: drop the
	// version, handle and cached results before anything fallible runs,
	// or a failed species cleanup would leave the cache serving a tree
	// whose relations are gone.
	s.dropTree(name)
	if _, err := s.be.Species.DeleteTree(name); err != nil {
		return nil, err
	}
	if err := s.commitShard(r.Context(), si); err != nil {
		return nil, err
	}
	return nil, s.recordWrite(cc, si, "delete", map[string]any{"tree": name}, "deleted")
}

// handleExport streams the stored tree as chunked Newick: one relation
// scan feeding the incremental emitter, so the server never materializes
// the tree or its serialization — peak memory is the emit chunk, and a
// client that disconnects stops the scan (and releases the snapshot)
// within one cancellation check.
func (s *Server) handleExport(r *http.Request, sn *reqSnap, w http.ResponseWriter) error {
	t, err := s.tree(sn, r.PathValue("name"))
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "text/x-newick; charset=utf-8")
	if err := t.ExportNewickTo(r.Context(), w); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// --- query handlers --------------------------------------------------------

func (s *Server) handleProject(r *http.Request, sn *reqSnap) (any, error) {
	name := r.PathValue("name")
	names := splitList(r.URL.Query().Get("species"))
	if len(names) == 0 {
		return nil, badRequest("species parameter is required")
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	rs, _ := sn.forTree(name)
	ep := rs.Epoch()
	ver, cacheable := s.treeVer(name, ep)
	var key string
	if cacheable {
		key = cacheKey(name, ver, "project", sorted...)
		if v, ok := s.cache.get(key); ok {
			s.stats.cacheHits.Add(1)
			resp := v.(ProjectResponse)
			resp.Cached = true
			return resp, nil
		}
	}
	s.stats.cacheMisses.Add(1)
	t, err := s.tree(sn, name)
	if err != nil {
		return nil, err
	}
	projected, err := t.ProjectNamesCtx(r.Context(), names)
	if err != nil {
		return nil, err
	}
	resp := ProjectResponse{Newick: newick.String(projected), Leaves: projected.NumLeaves()}
	if cacheable {
		s.cachePut(name, ver, key, resp)
	}
	s.recordAsync("project", map[string]any{"tree": name, "species": names}, resp.Newick)
	return resp, nil
}

func (s *Server) handleLCA(r *http.Request, sn *reqSnap) (any, error) {
	name := r.PathValue("name")
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		return nil, badRequest("a and b parameters are required")
	}
	ka, kb := a, b
	if ka > kb {
		ka, kb = kb, ka // LCA is symmetric; canonicalize the key
	}
	rs, _ := sn.forTree(name)
	ep := rs.Epoch()
	ver, cacheable := s.treeVer(name, ep)
	var key string
	if cacheable {
		key = cacheKey(name, ver, "lca", ka, kb)
		if v, ok := s.cache.get(key); ok {
			s.stats.cacheHits.Add(1)
			resp := v.(LCAResponse)
			resp.Cached = true
			return resp, nil
		}
	}
	s.stats.cacheMisses.Add(1)
	t, err := s.tree(sn, name)
	if err != nil {
		return nil, err
	}
	na, err := t.NodeByNameCtx(r.Context(), a)
	if err != nil {
		return nil, err
	}
	nb, err := t.NodeByNameCtx(r.Context(), b)
	if err != nil {
		return nil, err
	}
	id, err := t.LCACtx(r.Context(), na.ID, nb.ID)
	if err != nil {
		return nil, err
	}
	row, err := t.NodeCtx(r.Context(), id)
	if err != nil {
		return nil, err
	}
	resp := LCAResponse{Node: nodeJSON(row)}
	if cacheable {
		s.cachePut(name, ver, key, resp)
	}
	s.recordAsync("lca", map[string]any{"tree": name, "a": a, "b": b}, fmt.Sprintf("node %d", id))
	return resp, nil
}

func (s *Server) handleSample(r *http.Request, sn *reqSnap) (any, error) {
	name := r.PathValue("name")
	k, err := queryInt(r, "k", 10)
	if err != nil {
		return nil, err
	}
	seed, err := queryInt64(r, "seed", 1)
	if err != nil {
		return nil, err
	}
	t, err := s.tree(sn, name)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var rows []treestore.Node
	timeRaw := r.URL.Query().Get("time")
	timeArg := -1.0
	if timeRaw != "" {
		if timeArg, err = strconv.ParseFloat(timeRaw, 64); err != nil {
			return nil, badRequest("bad time=%q: %v", timeRaw, err)
		}
		rows, err = t.SampleWithTimeCtx(r.Context(), timeArg, k, rng)
	} else {
		rows, err = t.SampleUniformCtx(r.Context(), k, rng)
	}
	if err != nil {
		return nil, err
	}
	resp := SampleResponse{Species: make([]string, len(rows))}
	for i, n := range rows {
		resp.Species[i] = n.Name
	}
	sort.Strings(resp.Species)
	s.recordAsync("sample", map[string]any{"tree": name, "k": k, "time": timeArg, "seed": seed},
		strings.Join(resp.Species, " "))
	return resp, nil
}

func (s *Server) handleClade(r *http.Request, sn *reqSnap) (any, error) {
	name := r.PathValue("name")
	names := splitList(r.URL.Query().Get("species"))
	if len(names) == 0 {
		return nil, badRequest("species parameter is required")
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	rs, _ := sn.forTree(name)
	ep := rs.Epoch()
	ver, cacheable := s.treeVer(name, ep)
	var key string
	if cacheable {
		key = cacheKey(name, ver, "clade", sorted...)
		if v, ok := s.cache.get(key); ok {
			s.stats.cacheHits.Add(1)
			resp := v.(CladeResponse)
			resp.Cached = true
			return resp, nil
		}
	}
	s.stats.cacheMisses.Add(1)
	t, err := s.tree(sn, name)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(names))
	for i, sp := range names {
		row, err := t.NodeByNameCtx(r.Context(), sp)
		if err != nil {
			return nil, err
		}
		ids[i] = row.ID
	}
	clade, err := t.MinimalSpanningCladeCtx(r.Context(), ids)
	if err != nil {
		return nil, err
	}
	resp := CladeResponse{Root: nodeJSON(clade[0]), Nodes: len(clade)}
	for _, n := range clade {
		if n.Leaf {
			resp.Leaves++
			resp.Species = append(resp.Species, n.Name)
		}
	}
	sort.Strings(resp.Species)
	if cacheable {
		s.cachePut(name, ver, key, resp)
	}
	s.recordAsync("clade", map[string]any{"tree": name, "species": names},
		fmt.Sprintf("%d nodes", resp.Nodes))
	return resp, nil
}

func (s *Server) handleMatch(r *http.Request, sn *reqSnap) (any, error) {
	name := r.PathValue("name")
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, badRequest("reading pattern body: %v", err)
	}
	pattern, err := newick.Parse(string(raw))
	if err != nil {
		return nil, err
	}
	canonical := newick.String(pattern)
	rs, _ := sn.forTree(name)
	ep := rs.Epoch()
	ver, cacheable := s.treeVer(name, ep)
	var key string
	if cacheable {
		key = cacheKey(name, ver, "match", canonical)
		if v, ok := s.cache.get(key); ok {
			s.stats.cacheHits.Add(1)
			resp := v.(MatchResponse)
			resp.Cached = true
			return resp, nil
		}
	}
	s.stats.cacheMisses.Add(1)
	t, err := s.tree(sn, name)
	if err != nil {
		return nil, err
	}
	projected, err := t.ProjectNamesCtx(r.Context(), pattern.LeafNames())
	if err != nil {
		return nil, err
	}
	rf, err := treecmp.RobinsonFoulds(projected, pattern)
	if err != nil {
		return nil, err
	}
	norm, err := treecmp.NormalizedRF(projected, pattern)
	if err != nil {
		return nil, err
	}
	resp := MatchResponse{Exact: rf == 0, RF: rf, NormRF: norm, Projected: newick.String(projected)}
	if cacheable {
		s.cachePut(name, ver, key, resp)
	}
	s.recordAsync("match", map[string]any{"tree": name, "pattern": canonical},
		fmt.Sprintf("RF=%d", rf))
	return resp, nil
}

// handleBench runs the Benchmark Manager against a stored gold tree.
// It executes on the read path: the gold tree is exported once and the
// whole run is in-memory from there.
func (s *Server) handleBench(r *http.Request, sn *reqSnap) (any, error) {
	name := r.PathValue("name")
	var req BenchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, badRequest("decoding bench request: %v", err)
	}
	t, err := s.tree(sn, name)
	if err != nil {
		return nil, err
	}
	gold, err := t.ExportCtx(r.Context())
	if err != nil {
		return nil, err
	}
	cfg := benchmark.Config{
		Gold:        gold,
		SeqLength:   req.SeqLength,
		SampleSizes: req.Sizes,
		Replicates:  req.Replicates,
		Seed:        req.Seed,
		Parallel:    req.Parallel,
	}
	if len(cfg.SampleSizes) == 0 {
		cfg.SampleSizes = []int{10, 50, 100}
	}
	for _, a := range req.Algorithms {
		if a == "MP" || a == "mp" {
			cfg.SeqAlgorithms = append(cfg.SeqAlgorithms, recon.Parsimony{Seed: req.Seed})
			continue
		}
		alg, err := recon.ByName(a)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		cfg.Algorithms = append(cfg.Algorithms, alg)
	}
	if req.Time != nil {
		cfg.Method = benchmark.TimeConstrained
		cfg.Time = *req.Time
	}
	rep, err := benchmark.Run(cfg)
	if err != nil {
		return nil, err
	}
	s.recordAsync("bench", map[string]any{"tree": name, "sizes": cfg.SampleSizes,
		"reps": cfg.Replicates, "algs": req.Algorithms}, "benchmark complete")
	return rep.JSON(), nil
}

// --- species handlers ------------------------------------------------------

func (s *Server) handleSpeciesPut(r *http.Request, si int, cc *commitCollector) (any, error) {
	name, sp, kind := r.PathValue("name"), r.PathValue("sp"), r.PathValue("kind")
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, badRequest("reading body: %v", err)
	}
	if err := s.be.Species.Put(name, sp, kind, data); err != nil {
		return nil, err
	}
	cc.commitAsync(si)
	return nil, nil
}

func (s *Server) handleSpeciesGet(r *http.Request, sn *reqSnap) (string, string, error) {
	rs, _ := sn.forTree(r.PathValue("name"))
	data, err := species.ViewOn(rs).Get(r.PathValue("name"), r.PathValue("sp"), r.PathValue("kind"))
	if err != nil {
		return "", "", err
	}
	return string(data), "application/octet-stream", nil
}

func (s *Server) handleSpeciesDelete(r *http.Request, si int, cc *commitCollector) (any, error) {
	ok, err := s.be.Species.Delete(r.PathValue("name"), r.PathValue("sp"), r.PathValue("kind"))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s/%s", species.ErrNoData,
			r.PathValue("name"), r.PathValue("sp"), r.PathValue("kind"))
	}
	cc.commitAsync(si)
	return nil, nil
}

func (s *Server) handleSpeciesList(r *http.Request, sn *reqSnap) (any, error) {
	rs, _ := sn.forTree(r.PathValue("name"))
	recs, err := species.ViewOn(rs).List(r.PathValue("name"), r.PathValue("sp"))
	if err != nil {
		return nil, err
	}
	resp := SpeciesListResponse{Records: make([]SpeciesRecord, len(recs))}
	for i, rec := range recs {
		resp.Records[i] = SpeciesRecord{Tree: rec.Tree, Species: rec.Species, Kind: rec.Kind, Data: rec.Data}
	}
	return resp, nil
}

// --- history handlers ------------------------------------------------------

func entryJSON(e queryrepo.Entry) HistoryEntry {
	return HistoryEntry{ID: e.ID, Time: e.Time, Kind: e.Kind, Args: e.Args, Summary: e.Summary}
}

// handleHistory lists query-history entries newest first. limit bounds the
// page (default 50) and cursor resumes where the previous page stopped;
// ?kind= filtering is unpaginated (index scan, oldest first), as before.
func (s *Server) handleHistory(r *http.Request, sn *reqSnap) (any, error) {
	view := queryrepo.ViewOn(sn.shard(0)) // history lives on shard 0
	if kind := r.URL.Query().Get("kind"); kind != "" {
		entries, err := view.ByKindCtx(r.Context(), kind)
		if err != nil {
			return nil, err
		}
		return historyJSON(entries, 0), nil
	}
	limit, err := queryInt(r, "limit", 50)
	if err != nil {
		return nil, err
	}
	if limit < 0 {
		return nil, badRequest("bad limit %d: must be >= 0", limit)
	}
	pos, err := decodeCursor(historyCursorKind, r.URL.Query().Get("cursor"))
	if err != nil {
		return nil, err
	}
	before := int64(0)
	if pos != "" {
		if before, err = strconv.ParseInt(pos, 10, 64); err != nil {
			return nil, badRequest("bad cursor position %q", pos)
		}
	}
	entries, next, err := view.HistoryPage(r.Context(), before, limit)
	if err != nil {
		return nil, err
	}
	return historyJSON(entries, next), nil
}

func historyJSON(entries []queryrepo.Entry, next int64) HistoryResponse {
	resp := HistoryResponse{Entries: make([]HistoryEntry, len(entries))}
	for i, e := range entries {
		resp.Entries[i] = entryJSON(e)
	}
	if next > 0 {
		resp.NextCursor = encodeCursor(historyCursorKind, strconv.FormatInt(next, 10))
	}
	return resp
}

func (s *Server) handleHistoryGet(r *http.Request, sn *reqSnap) (any, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return nil, badRequest("bad history id %q", r.PathValue("id"))
	}
	e, err := queryrepo.ViewOn(sn.shard(0)).Get(id)
	if err != nil {
		return nil, err
	}
	return entryJSON(e), nil
}
