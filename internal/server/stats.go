package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/treestore"
)

// serverStats holds the counters behind /v1/stats and /metrics. Hot
// counters are atomics; the per-op map takes a small mutex.
type serverStats struct {
	start          time.Time
	requests       atomic.Int64
	errors         atomic.Int64
	inFlightReads  atomic.Int64
	abortedReads   atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	historyDropped atomic.Int64

	// Ingest pipeline: completed loads and cumulative per-stage wall time.
	loads        atomic.Int64
	loadParseNS  atomic.Int64
	loadIndexNS  atomic.Int64
	loadStageNS  atomic.Int64
	loadInsertNS atomic.Int64

	mu    sync.Mutex
	perOp map[string]int64
}

// countLoad records one completed tree load's per-stage timings.
func (st *serverStats) countLoad(parseNS int64, m treestore.LoadMetrics) {
	st.loads.Add(1)
	st.loadParseNS.Add(parseNS)
	st.loadIndexNS.Add(m.IndexNS)
	st.loadStageNS.Add(m.StageNS)
	st.loadInsertNS.Add(m.InsertNS)
}

func newServerStats() *serverStats {
	return &serverStats{start: time.Now(), perOp: make(map[string]int64)}
}

func (st *serverStats) countRequest(op string) {
	st.requests.Add(1)
	st.mu.Lock()
	st.perOp[op]++
	st.mu.Unlock()
}

// snapshot captures every counter; cacheEntries and openTrees are
// supplied by the server since they live outside this struct.
func (st *serverStats) snapshot(cacheEntries, openTrees int) StatsSnapshot {
	st.mu.Lock()
	perOp := make(map[string]int64, len(st.perOp))
	for k, v := range st.perOp {
		perOp[k] = v
	}
	st.mu.Unlock()
	return StatsSnapshot{
		UptimeSeconds:  time.Since(st.start).Seconds(),
		Requests:       st.requests.Load(),
		Errors:         st.errors.Load(),
		InFlightReads:  st.inFlightReads.Load(),
		AbortedReads:   st.abortedReads.Load(),
		CacheHits:      st.cacheHits.Load(),
		CacheMisses:    st.cacheMisses.Load(),
		CacheEntries:   cacheEntries,
		OpenTrees:      openTrees,
		HistoryDropped: st.historyDropped.Load(),
		Loads:          st.loads.Load(),
		LoadParseNS:    st.loadParseNS.Load(),
		LoadIndexNS:    st.loadIndexNS.Load(),
		LoadStageNS:    st.loadStageNS.Load(),
		LoadInsertNS:   st.loadInsertNS.Load(),
		PerOp:          perOp,
	}
}

// metricsText renders the snapshot in Prometheus exposition style.
func metricsText(s StatsSnapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "crimsond_uptime_seconds %g\n", s.UptimeSeconds)
	fmt.Fprintf(&sb, "crimsond_requests_total %d\n", s.Requests)
	fmt.Fprintf(&sb, "crimsond_errors_total %d\n", s.Errors)
	fmt.Fprintf(&sb, "crimsond_inflight_reads %d\n", s.InFlightReads)
	fmt.Fprintf(&sb, "crimsond_aborted_reads_total %d\n", s.AbortedReads)
	fmt.Fprintf(&sb, "crimsond_cache_hits_total %d\n", s.CacheHits)
	fmt.Fprintf(&sb, "crimsond_cache_misses_total %d\n", s.CacheMisses)
	fmt.Fprintf(&sb, "crimsond_cache_entries %d\n", s.CacheEntries)
	fmt.Fprintf(&sb, "crimsond_open_trees %d\n", s.OpenTrees)
	fmt.Fprintf(&sb, "crimsond_epoch %d\n", s.Epoch)
	fmt.Fprintf(&sb, "crimsond_open_snapshots %d\n", s.OpenSnapshots)
	fmt.Fprintf(&sb, "crimsond_reclaim_pending_pages %d\n", s.PendingReclaimPages)
	fmt.Fprintf(&sb, "crimsond_shards %d\n", len(s.Shards))
	for _, sh := range s.Shards {
		fmt.Fprintf(&sb, "crimsond_shard_epoch{shard=\"%d\"} %d\n", sh.Shard, sh.Epoch)
		fmt.Fprintf(&sb, "crimsond_shard_open_snapshots{shard=\"%d\"} %d\n", sh.Shard, sh.OpenSnapshots)
		fmt.Fprintf(&sb, "crimsond_shard_reclaim_pending_pages{shard=\"%d\"} %d\n", sh.Shard, sh.PendingReclaimPages)
	}
	fmt.Fprintf(&sb, "crimsond_history_dropped_total %d\n", s.HistoryDropped)
	fmt.Fprintf(&sb, "crimsond_load_workers %d\n", s.LoadWorkers)
	fmt.Fprintf(&sb, "crimsond_loads_total %d\n", s.Loads)
	fmt.Fprintf(&sb, "crimsond_load_parse_ns_total %d\n", s.LoadParseNS)
	fmt.Fprintf(&sb, "crimsond_load_index_ns_total %d\n", s.LoadIndexNS)
	fmt.Fprintf(&sb, "crimsond_load_stage_ns_total %d\n", s.LoadStageNS)
	fmt.Fprintf(&sb, "crimsond_load_insert_ns_total %d\n", s.LoadInsertNS)
	ops := make([]string, 0, len(s.PerOp))
	for op := range s.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&sb, "crimsond_requests{op=%q} %d\n", op, s.PerOp[op])
	}
	return sb.String()
}
