package server

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/treestore"
)

// opNames is the preregistered, fixed operation set. Request counts and
// latency histograms are arrays indexed by position here, so the hot
// path is lock-free atomic adds with no map. Requests whose op is not in
// the set (none today; the slot guards against future drift) land in the
// trailing "other" bucket.
var opNames = []string{
	"stats", "trees", "load", "info", "delete",
	"project", "lca", "sample", "clade", "match",
	"bench", "export",
	"species_put", "species_get", "species_delete", "species_list",
	"history", "history_get",
	"repl_status", "repl_stream", "repl_promote",
	"other",
}

const numOps = 22 // len(opNames); a constant so the stat arrays can size on it

// opIndexOf maps op name -> array slot. Built once and read-only
// afterwards, so lock-free lookups are safe.
var opIndexOf = func() map[string]int {
	if len(opNames) != numOps {
		panic("numOps out of sync with opNames")
	}
	m := make(map[string]int, len(opNames))
	for i, n := range opNames {
		m[n] = i
	}
	return m
}()

func opIndex(op string) int {
	if i, ok := opIndexOf[op]; ok {
		return i
	}
	return numOps - 1 // "other"
}

// serverStats holds the counters behind /v1/stats and /metrics. All hot
// paths are atomic; nothing takes a lock.
type serverStats struct {
	start          time.Time
	requests       atomic.Int64
	errors         atomic.Int64
	inFlightReads  atomic.Int64
	abortedReads   atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	historyDropped atomic.Int64

	// Ingest pipeline: completed loads and cumulative per-stage wall time.
	loads        atomic.Int64
	loadParseNS  atomic.Int64
	loadIndexNS  atomic.Int64
	loadStageNS  atomic.Int64
	loadInsertNS atomic.Int64

	// perOp counts requests per operation; opHist records each op's
	// end-to-end latency. Both are indexed by opIndex.
	perOp  [numOps]atomic.Int64
	opHist [numOps]obs.Histogram
	// commitHist records storage-engine commit latency across all commit
	// sites (loads, writes, the history recorder, shutdown).
	commitHist obs.Histogram
}

// countLoad records one completed tree load's per-stage timings.
func (st *serverStats) countLoad(parseNS int64, m treestore.LoadMetrics) {
	st.loads.Add(1)
	st.loadParseNS.Add(parseNS)
	st.loadIndexNS.Add(m.IndexNS)
	st.loadStageNS.Add(m.StageNS)
	st.loadInsertNS.Add(m.InsertNS)
}

func newServerStats() *serverStats {
	return &serverStats{start: time.Now()}
}

func (st *serverStats) countRequest(op string) {
	st.requests.Add(1)
	st.perOp[opIndex(op)].Add(1)
}

// observeOp records one completed request's end-to-end latency.
func (st *serverStats) observeOp(op string, d time.Duration) {
	st.opHist[opIndex(op)].Observe(d)
}

// observeCommit records one storage-engine commit's latency.
func (st *serverStats) observeCommit(d time.Duration) {
	st.commitHist.Observe(d)
}

// opHistEntry pairs an op name with a consistent snapshot of its latency
// histogram, for /metrics rendering and /v1/stats percentiles.
type opHistEntry struct {
	op string
	h  obs.HistSnapshot
}

// histSnapshots returns one entry per op with at least one observation,
// plus "commit" for engine commits, sorted by op name.
func (st *serverStats) histSnapshots() []opHistEntry {
	var out []opHistEntry
	for i := range st.opHist {
		h := st.opHist[i].Snapshot()
		if h.Count > 0 {
			out = append(out, opHistEntry{op: opNames[i], h: h})
		}
	}
	if h := st.commitHist.Snapshot(); h.Count > 0 {
		out = append(out, opHistEntry{op: "commit", h: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].op < out[j].op })
	return out
}

// snapshot captures every counter; cacheEntries and openTrees are
// supplied by the server since they live outside this struct.
func (st *serverStats) snapshot(cacheEntries, openTrees int) StatsSnapshot {
	perOp := make(map[string]int64)
	for i := range st.perOp {
		if n := st.perOp[i].Load(); n > 0 {
			perOp[opNames[i]] = n
		}
	}
	lat := make(map[string]OpLatency)
	for _, e := range st.histSnapshots() {
		lat[e.op] = OpLatency{
			Count: e.h.Count,
			P50MS: e.h.Quantile(0.50) * 1000,
			P95MS: e.h.Quantile(0.95) * 1000,
			P99MS: e.h.Quantile(0.99) * 1000,
		}
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	return StatsSnapshot{
		UptimeSeconds:  time.Since(st.start).Seconds(),
		Requests:       st.requests.Load(),
		Errors:         st.errors.Load(),
		InFlightReads:  st.inFlightReads.Load(),
		AbortedReads:   st.abortedReads.Load(),
		CacheHits:      st.cacheHits.Load(),
		CacheMisses:    st.cacheMisses.Load(),
		CacheEntries:   cacheEntries,
		OpenTrees:      openTrees,
		PerOp:          perOp,
		OpLatencies:    lat,
		Engine:         obs.Engine.Snapshot(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: mem.HeapAlloc,
		HistoryDropped: st.historyDropped.Load(),
		Loads:          st.loads.Load(),
		LoadParseNS:    st.loadParseNS.Load(),
		LoadIndexNS:    st.loadIndexNS.Load(),
		LoadStageNS:    st.loadStageNS.Load(),
		LoadInsertNS:   st.loadInsertNS.Load(),
	}
}

// metricsText renders the Prometheus exposition-format /metrics page.
// Every series family carries # HELP and # TYPE metadata, counter names
// end in _total, and label values use plain double quotes, so a strict
// parser accepts the page.
func metricsText(s StatsSnapshot, hists []opHistEntry) string {
	var sb strings.Builder
	writeStandardFamilies(&sb, s)
	writeReplFamilies(&sb, s)
	writeEngineFamilies(&sb, s.Engine)
	writeHistogramFamilies(&sb, hists)
	writeGroupCommitFamily(&sb)
	writeRuntimeFamilies(&sb, s)
	return sb.String()
}

// fnum renders a float the way Prometheus expects (shortest round-trip
// representation, scientific notation allowed).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeStandardFamilies(b *strings.Builder, s StatsSnapshot) {
	family := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	gauge := func(name, help string, v int64) {
		family(name, help, "gauge")
		fmt.Fprintf(b, "%s %d\n", name, v)
	}
	counter := func(name, help string, v int64) {
		family(name, help, "counter")
		fmt.Fprintf(b, "%s %d\n", name, v)
	}

	family("crimsond_uptime_seconds", "Seconds since the server started.", "gauge")
	fmt.Fprintf(b, "crimsond_uptime_seconds %s\n", fnum(s.UptimeSeconds))
	counter("crimsond_requests_total", "HTTP API requests received.", s.Requests)
	counter("crimsond_errors_total", "Requests that returned an error response.", s.Errors)
	gauge("crimsond_inflight_reads", "Read requests currently executing.", s.InFlightReads)
	counter("crimsond_aborted_reads_total", "Read requests aborted by client disconnect or deadline.", s.AbortedReads)
	counter("crimsond_cache_hits_total", "Result-cache hits.", s.CacheHits)
	counter("crimsond_cache_misses_total", "Result-cache misses.", s.CacheMisses)
	gauge("crimsond_cache_entries", "Entries currently in the result cache.", int64(s.CacheEntries))
	gauge("crimsond_open_trees", "Trees open in the repository catalog.", int64(s.OpenTrees))
	gauge("crimsond_epoch", "Sum of committed MVCC epochs across shards.", int64(s.Epoch))
	gauge("crimsond_open_snapshots", "Open MVCC snapshots across shards.", int64(s.OpenSnapshots))
	gauge("crimsond_reclaim_pending_pages", "Pages awaiting MVCC reclamation across shards.", int64(s.PendingReclaimPages))
	gauge("crimsond_shards", "Number of repository shards.", int64(len(s.Shards)))

	family("crimsond_shard_epoch", "Committed MVCC epoch of one shard.", "gauge")
	for _, sh := range s.Shards {
		fmt.Fprintf(b, "crimsond_shard_epoch{shard=\"%d\"} %d\n", sh.Shard, sh.Epoch)
	}
	family("crimsond_shard_open_snapshots", "Open MVCC snapshots of one shard.", "gauge")
	for _, sh := range s.Shards {
		fmt.Fprintf(b, "crimsond_shard_open_snapshots{shard=\"%d\"} %d\n", sh.Shard, sh.OpenSnapshots)
	}
	family("crimsond_shard_reclaim_pending_pages", "Pages awaiting MVCC reclamation on one shard.", "gauge")
	for _, sh := range s.Shards {
		fmt.Fprintf(b, "crimsond_shard_reclaim_pending_pages{shard=\"%d\"} %d\n", sh.Shard, sh.PendingReclaimPages)
	}

	gauge("crimsond_checkpoint_backlog_bytes", "Committed page bytes awaiting checkpoint writeback across shards.", s.CheckpointBacklogBytes)
	gauge("crimsond_wal_bytes", "Current write-ahead log size across shards.", s.WALBytes)
	family("crimsond_shard_checkpoint_backlog_bytes", "Committed page bytes awaiting checkpoint writeback on one shard.", "gauge")
	for _, sh := range s.Shards {
		fmt.Fprintf(b, "crimsond_shard_checkpoint_backlog_bytes{shard=\"%d\"} %d\n", sh.Shard, sh.CheckpointBacklogBytes)
	}
	family("crimsond_shard_wal_bytes", "Current write-ahead log size of one shard.", "gauge")
	for _, sh := range s.Shards {
		fmt.Fprintf(b, "crimsond_shard_wal_bytes{shard=\"%d\"} %d\n", sh.Shard, sh.WALBytes)
	}

	counter("crimsond_history_dropped_total", "Query-history records dropped because the recorder queue was full.", s.HistoryDropped)
	gauge("crimsond_load_workers", "Configured ingest fan-out.", int64(s.LoadWorkers))
	counter("crimsond_loads_total", "Completed tree loads.", s.Loads)
	counter("crimsond_load_parse_ns_total", "Wall time parsing input across loads, in nanoseconds.", s.LoadParseNS)
	counter("crimsond_load_index_ns_total", "Wall time indexing trees across loads, in nanoseconds.", s.LoadIndexNS)
	counter("crimsond_load_stage_ns_total", "Wall time staging rows across loads, in nanoseconds.", s.LoadStageNS)
	counter("crimsond_load_insert_ns_total", "Wall time inserting rows across loads, in nanoseconds.", s.LoadInsertNS)

	family("crimsond_op_requests_total", "Requests received, by operation.", "counter")
	ops := make([]string, 0, len(s.PerOp))
	for op := range s.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(b, "crimsond_op_requests_total{op=\"%s\"} %d\n", op, s.PerOp[op])
	}
}

// writeReplFamilies renders the replication gauges: role, and per shard
// the published/applied epoch, subscriber count and — on a follower —
// the primary's epoch, the apply lag in epochs and stream liveness. All
// families are emitted on every server (a primary simply reports zero
// lag and no follower flags), so the strict-parse metrics gate sees the
// series from startup.
func writeReplFamilies(b *strings.Builder, s StatsSnapshot) {
	family := func(name, help string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	rs := s.Repl
	if rs == nil {
		rs = &repl.StatusResponse{Role: "primary"}
	}
	boolv := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	family("crimsond_repl_primary", "1 when this server is a writable primary, 0 while it is a follower.")
	fmt.Fprintf(b, "crimsond_repl_primary %d\n", boolv(rs.Role == "primary"))
	family("crimsond_repl_epoch", "Published epoch of one shard (committed on a primary, applied on a follower).")
	for _, sh := range rs.Shards {
		fmt.Fprintf(b, "crimsond_repl_epoch{shard=\"%d\"} %d\n", sh.Shard, sh.Epoch)
	}
	family("crimsond_repl_subscribers", "Connected replication subscribers of one shard.")
	for _, sh := range rs.Shards {
		fmt.Fprintf(b, "crimsond_repl_subscribers{shard=\"%d\"} %d\n", sh.Shard, sh.Subscribers)
	}
	family("crimsond_repl_primary_epoch", "Last epoch the primary reported for one shard (follower only; 0 on a primary).")
	for _, sh := range rs.Shards {
		fmt.Fprintf(b, "crimsond_repl_primary_epoch{shard=\"%d\"} %d\n", sh.Shard, sh.PrimaryEpoch)
	}
	family("crimsond_repl_lag_epochs", "Apply lag of one shard in epochs behind the primary (0 on a primary).")
	for _, sh := range rs.Shards {
		fmt.Fprintf(b, "crimsond_repl_lag_epochs{shard=\"%d\"} %d\n", sh.Shard, sh.LagEpochs)
	}
	family("crimsond_repl_connected", "1 while one shard's replication stream is connected (0 on a primary).")
	for _, sh := range rs.Shards {
		fmt.Fprintf(b, "crimsond_repl_connected{shard=\"%d\"} %d\n", sh.Shard, boolv(sh.Connected))
	}
	family("crimsond_repl_synced", "1 once one shard's follower has caught up to the primary (0 on a primary).")
	for _, sh := range rs.Shards {
		fmt.Fprintf(b, "crimsond_repl_synced{shard=\"%d\"} %d\n", sh.Shard, boolv(sh.Synced))
	}
	family("crimsond_repl_last_contact_ms", "Milliseconds since one shard's stream last heard from the primary.")
	for _, sh := range rs.Shards {
		fmt.Fprintf(b, "crimsond_repl_last_contact_ms{shard=\"%d\"} %d\n", sh.Shard, sh.LastContactMS)
	}
}

// engineHelp documents each obs engine counter for /metrics HELP lines.
var engineHelp = map[string]string{
	"btree_descents":             "B+tree root-to-leaf descents.",
	"cells_decoded":              "B+tree cells decoded while reading nodes.",
	"rows_scanned":               "Rows produced by range scans.",
	"pool_hits":                  "Buffer-pool page read hits.",
	"pool_misses":                "Buffer-pool page read misses.",
	"pages_read":                 "Pages read from disk.",
	"pages_written":              "Pages written at commit.",
	"cow_pages":                  "Pages copied by copy-on-write before modification.",
	"wal_bytes":                  "Bytes appended to the write-ahead log.",
	"wal_syncs":                  "Write-ahead log fsyncs.",
	"read_cache_hits":            "Decoded-node read cache hits.",
	"read_cache_misses":          "Decoded-node read cache misses (cacheable interior nodes decoded).",
	"read_cache_evicts":          "Decoded-node read cache evictions under the byte budget.",
	"commits":                    "Storage-engine commits made durable.",
	"group_commit_batches":       "WAL batches flushed by group commit (each is one fsync).",
	"group_fsyncs_saved":         "Fsyncs avoided by coalescing commits into group-commit batches.",
	"checkpoint_runs":            "Background checkpoint passes completed.",
	"checkpoint_pages":           "Pages written back to the page file by checkpoints.",
	"checkpoint_bytes":           "Bytes written back to the page file by checkpoints.",
	"wal_highwater_bytes":        "Largest write-ahead log size observed (high-water mark).",
	"repl_batches_shipped":       "WAL commit batches shipped to replication subscribers.",
	"repl_bytes_shipped":         "Bytes shipped on replication streams (page payloads).",
	"repl_snapshot_pages":        "Pages shipped in full-snapshot replica catch-ups.",
	"repl_batches_applied":       "Replicated batches applied by this follower.",
	"repl_pages_applied":         "Pages applied from replicated batches and snapshots.",
	"repl_apply_conflicts":       "Replica applies that waited out the snapshot grace period and invalidated the still-open snapshots.",
	"repl_reconnects":            "Replication stream reconnect attempts.",
	"repl_snapshots_invalidated": "Replica applies that invalidated still-open local snapshots (their reads fail with a retryable error).",
	"wal_retain_drops":           "WAL truncations that overrode a replication retain floor because the log outgrew the retain cap.",
}

// writeEngineFamilies emits one counter family per process-global engine
// counter. It takes the already-captured snapshot so /metrics and
// /v1/stats agree within a scrape; counters absent from the snapshot
// (zero) are still emitted as 0 so the series exist from startup.
func writeEngineFamilies(b *strings.Builder, engine map[string]int64) {
	for _, name := range obs.CounterNames() {
		metric := "crimsond_engine_" + name + "_total"
		help := engineHelp[name]
		if help == "" {
			help = "Storage-engine counter " + name + "."
		}
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", metric, help, metric)
		fmt.Fprintf(b, "%s %d\n", metric, engine[name])
	}
}

func writeHistogramFamilies(b *strings.Builder, hists []opHistEntry) {
	fmt.Fprintf(b, "# HELP crimsond_op_duration_seconds End-to-end request latency by operation (op=\"commit\" is engine commit latency).\n")
	fmt.Fprintf(b, "# TYPE crimsond_op_duration_seconds histogram\n")
	for _, e := range hists {
		for i := 0; i < obs.HistBuckets; i++ {
			bound := float64(obs.BucketBoundUS(i)) / 1e6
			fmt.Fprintf(b, "crimsond_op_duration_seconds_bucket{op=\"%s\",le=\"%s\"} %d\n",
				e.op, fnum(bound), e.h.Counts[i])
		}
		fmt.Fprintf(b, "crimsond_op_duration_seconds_bucket{op=\"%s\",le=\"+Inf\"} %d\n", e.op, e.h.Counts[obs.HistBuckets])
		fmt.Fprintf(b, "crimsond_op_duration_seconds_sum{op=\"%s\"} %s\n", e.op, fnum(float64(e.h.SumNS)/1e9))
		fmt.Fprintf(b, "crimsond_op_duration_seconds_count{op=\"%s\"} %d\n", e.op, e.h.Count)
	}
}

// writeGroupCommitFamily renders the group-commit batch-size distribution:
// one observation per flushed WAL batch, valued at the number of commits
// the batch carried. The histogram reuses obs.Histogram's log2 buckets, so
// le bounds are powers of two of commits-per-batch (not seconds).
func writeGroupCommitFamily(b *strings.Builder) {
	gb := obs.GroupBatch.Snapshot()
	fmt.Fprintf(b, "# HELP crimsond_group_commit_batch_size Commits coalesced per flushed WAL batch.\n")
	fmt.Fprintf(b, "# TYPE crimsond_group_commit_batch_size histogram\n")
	for i := 0; i < obs.HistBuckets; i++ {
		fmt.Fprintf(b, "crimsond_group_commit_batch_size_bucket{le=\"%d\"} %d\n",
			obs.BucketBoundUS(i), gb.Counts[i])
	}
	fmt.Fprintf(b, "crimsond_group_commit_batch_size_bucket{le=\"+Inf\"} %d\n", gb.Counts[obs.HistBuckets])
	fmt.Fprintf(b, "crimsond_group_commit_batch_size_sum %d\n", gb.SumNS/1000)
	fmt.Fprintf(b, "crimsond_group_commit_batch_size_count %d\n", gb.Count)
}

func writeRuntimeFamilies(b *strings.Builder, s StatsSnapshot) {
	fmt.Fprintf(b, "# HELP crimsond_goroutines Goroutines currently running.\n# TYPE crimsond_goroutines gauge\n")
	fmt.Fprintf(b, "crimsond_goroutines %d\n", s.Goroutines)
	fmt.Fprintf(b, "# HELP crimsond_heap_alloc_bytes Bytes of allocated heap objects.\n# TYPE crimsond_heap_alloc_bytes gauge\n")
	fmt.Fprintf(b, "crimsond_heap_alloc_bytes %d\n", s.HeapAllocBytes)
	fmt.Fprintf(b, "# HELP crimsond_gomaxprocs GOMAXPROCS setting.\n# TYPE crimsond_gomaxprocs gauge\n")
	fmt.Fprintf(b, "crimsond_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
}
