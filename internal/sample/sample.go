// Package sample implements the species-sampling queries of §2.2: uniform
// random sampling of leaves, random sampling *with respect to an
// evolutionary time* (the paper's frontier strategy), clade-restricted
// sampling, and explicit user selection. All randomized functions take a
// *rand.Rand so experiments are reproducible.
package sample

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/phylo"
)

// Errors returned by the samplers.
var (
	ErrBadCount    = errors.New("sample: requested count must be >= 1")
	ErrTooFew      = errors.New("sample: tree has fewer eligible leaves than requested")
	ErrEmptyResult = errors.New("sample: no nodes satisfy the time constraint")
)

// Uniform returns k distinct leaves drawn uniformly at random.
func Uniform(t *phylo.Tree, k int, r *rand.Rand) ([]*phylo.Node, error) {
	if k < 1 {
		return nil, ErrBadCount
	}
	leaves := t.Leaves()
	if len(leaves) < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFew, len(leaves), k)
	}
	// Partial Fisher-Yates: only the first k positions are needed.
	picked := append([]*phylo.Node(nil), leaves...)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(picked)-i)
		picked[i], picked[j] = picked[j], picked[i]
	}
	return picked[:k], nil
}

// Frontier returns the maximal nodes whose total weight from the root
// exceeds the given evolutionary time: every node n with RootDistance(n) >
// time whose parent's distance is <= time. This is the node set the
// paper's walkthrough computes (for time 1 on Figure 1 it is {Bha, y, Syn,
// Bsu}, y being the parent of Lla and Spy).
func Frontier(t *phylo.Tree, time float64) []*phylo.Node {
	dist := t.RootDistances()
	var out []*phylo.Node
	for _, n := range t.Nodes() {
		if dist[n] > time && (n.Parent == nil || dist[n.Parent] <= time) {
			out = append(out, n)
		}
	}
	return out
}

// WithRespectToTime samples k species derived from the evolutionary time
// period, following the paper's strategy: find the frontier of nodes whose
// root distance exceeds time, then draw k/|frontier| leaves from the
// subtree under each frontier node. Remainders (and quotas exceeding a
// subtree's leaf count) are redistributed across frontier subtrees with
// spare capacity, chosen at random.
func WithRespectToTime(t *phylo.Tree, time float64, k int, r *rand.Rand) ([]*phylo.Node, error) {
	if k < 1 {
		return nil, ErrBadCount
	}
	frontier := Frontier(t, time)
	if len(frontier) == 0 {
		return nil, fmt.Errorf("%w: time %g", ErrEmptyResult, time)
	}
	// Collect leaves under each frontier node.
	groups := make([][]*phylo.Node, len(frontier))
	total := 0
	for i, fn := range frontier {
		groups[i] = subtreeLeaves(fn)
		total += len(groups[i])
	}
	if total < k {
		return nil, fmt.Errorf("%w: %d leaves past time %g < %d", ErrTooFew, total, time, k)
	}
	// Base quota per group plus a remainder distributed to random groups,
	// then shift quota overflow to groups with spare capacity.
	quota := make([]int, len(groups))
	base := k / len(groups)
	for i := range quota {
		quota[i] = base
	}
	for _, i := range r.Perm(len(groups))[:k%len(groups)] {
		quota[i]++
	}
	for {
		excess := 0
		for i := range quota {
			if over := quota[i] - len(groups[i]); over > 0 {
				quota[i] = len(groups[i])
				excess += over
			}
		}
		if excess == 0 {
			break
		}
		spare := r.Perm(len(groups))
		for _, i := range spare {
			if excess == 0 {
				break
			}
			if room := len(groups[i]) - quota[i]; room > 0 {
				take := room
				if take > excess {
					take = excess
				}
				quota[i] += take
				excess -= take
			}
		}
	}
	var out []*phylo.Node
	for i, g := range groups {
		if quota[i] == 0 {
			continue
		}
		picked := append([]*phylo.Node(nil), g...)
		for j := 0; j < quota[i]; j++ {
			m := j + r.Intn(len(picked)-j)
			picked[j], picked[m] = picked[m], picked[j]
		}
		out = append(out, picked[:quota[i]]...)
	}
	return out, nil
}

// ByClade samples k leaves uniformly from the clade rooted at node.
func ByClade(node *phylo.Node, k int, r *rand.Rand) ([]*phylo.Node, error) {
	if k < 1 {
		return nil, ErrBadCount
	}
	leaves := subtreeLeaves(node)
	if len(leaves) < k {
		return nil, fmt.Errorf("%w: clade has %d leaves < %d", ErrTooFew, len(leaves), k)
	}
	picked := append([]*phylo.Node(nil), leaves...)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(picked)-i)
		picked[i], picked[j] = picked[j], picked[i]
	}
	return picked[:k], nil
}

// FromNames resolves an explicit user selection (the paper's "user input"
// selection method), failing on unknown names and rejecting duplicates.
func FromNames(t *phylo.Tree, names []string) ([]*phylo.Node, error) {
	if len(names) == 0 {
		return nil, ErrBadCount
	}
	seen := make(map[string]bool, len(names))
	out := make([]*phylo.Node, 0, len(names))
	for _, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("sample: duplicate name %q", name)
		}
		seen[name] = true
		n := t.NodeByName(name)
		if n == nil {
			return nil, fmt.Errorf("sample: no species named %q", name)
		}
		out = append(out, n)
	}
	return out, nil
}

// Names returns the sorted names of the sampled nodes — convenient for
// deterministic test assertions and reports.
func Names(nodes []*phylo.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	sort.Strings(out)
	return out
}

func subtreeLeaves(n *phylo.Node) []*phylo.Node {
	var out []*phylo.Node
	stack := []*phylo.Node{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.IsLeaf() {
			out = append(out, cur)
			continue
		}
		for i := len(cur.Children) - 1; i >= 0; i-- {
			stack = append(stack, cur.Children[i])
		}
	}
	return out
}
