package sample

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/phylo"
)

// TestPaperTimeSampling replays the §2.2 walkthrough: sampling 4 species
// with respect to evolutionary distance 1 from the Figure 1 tree. The
// frontier is {Bha, y, Syn, Bsu} (the paper writes "x" for the parent of
// Lla and Spy), each contributing 4/4 = 1 leaf, so the result is
// {Bha, Lla, Syn, Bsu} or {Bha, Spy, Syn, Bsu}.
func TestPaperTimeSampling(t *testing.T) {
	tr := phylo.PaperFigure1()
	front := Frontier(tr, 1)
	if len(front) != 4 {
		t.Fatalf("frontier size = %d, want 4", len(front))
	}
	names := map[string]bool{}
	for _, n := range front {
		if n.Name != "" {
			names[n.Name] = true
		} else if n != tr.NodeByName("Lla").Parent {
			t.Fatalf("unexpected anonymous frontier node %v", n)
		}
	}
	for _, want := range []string{"Bha", "Syn", "Bsu"} {
		if !names[want] {
			t.Fatalf("frontier missing %s (has %v)", want, names)
		}
	}

	sawLla, sawSpy := false, false
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		got, err := WithRespectToTime(tr, 1, 4, r)
		if err != nil {
			t.Fatal(err)
		}
		gotNames := Names(got)
		wantA := []string{"Bha", "Bsu", "Lla", "Syn"}
		wantB := []string{"Bha", "Bsu", "Spy", "Syn"}
		switch {
		case reflect.DeepEqual(gotNames, wantA):
			sawLla = true
		case reflect.DeepEqual(gotNames, wantB):
			sawSpy = true
		default:
			t.Fatalf("seed %d: sample = %v, want %v or %v", seed, gotNames, wantA, wantB)
		}
	}
	if !sawLla || !sawSpy {
		t.Fatalf("randomness degenerate: Lla=%v Spy=%v over 50 seeds", sawLla, sawSpy)
	}
}

func TestFrontierBoundary(t *testing.T) {
	tr := phylo.PaperFigure1()
	// At time 0 every root child whose edge exceeds 0 is the frontier.
	front := Frontier(tr, 0)
	if len(front) != 3 {
		t.Fatalf("frontier(0) size = %d, want 3 (root children)", len(front))
	}
	// Beyond the tree's height the frontier is empty.
	if got := Frontier(tr, 100); len(got) != 0 {
		t.Fatalf("frontier(100) = %v", got)
	}
	// Exactly at a node's distance the node is excluded (strict >): Bha
	// and Bsu sit at 1.25.
	front = Frontier(tr, 1.25)
	for _, n := range front {
		if n.Name == "Bha" || n.Name == "Bsu" {
			t.Fatalf("node at distance exactly 1.25 included at time 1.25")
		}
	}
}

func TestUniform(t *testing.T) {
	tr := phylo.PaperFigure1()
	r := rand.New(rand.NewSource(1))
	got, err := Uniform(tr, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	seen := map[string]bool{}
	for _, n := range got {
		if !n.IsLeaf() {
			t.Fatalf("sampled interior node %v", n)
		}
		if seen[n.Name] {
			t.Fatalf("duplicate %s", n.Name)
		}
		seen[n.Name] = true
	}
	if _, err := Uniform(tr, 6, r); err == nil {
		t.Fatal("oversample succeeded")
	}
	if _, err := Uniform(tr, 0, r); err == nil {
		t.Fatal("k=0 succeeded")
	}
	// k = all leaves returns every leaf.
	all, err := Uniform(tr, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Names(all), []string{"Bha", "Bsu", "Lla", "Spy", "Syn"}) {
		t.Fatalf("full sample = %v", Names(all))
	}
}

// TestUniformIsUnbiasedish: over many draws of 1-of-5, each leaf should
// appear a reasonable number of times.
func TestUniformIsUnbiasedish(t *testing.T) {
	tr := phylo.PaperFigure1()
	r := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	const trials = 5000
	for i := 0; i < trials; i++ {
		got, err := Uniform(tr, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		counts[got[0].Name]++
	}
	for name, c := range counts {
		if c < trials/5-200 || c > trials/5+200 {
			t.Fatalf("leaf %s drawn %d times of %d (expected ~%d)", name, c, trials, trials/5)
		}
	}
}

func TestWithRespectToTimeQuotaRedistribution(t *testing.T) {
	// Build a tree where one frontier subtree has a single leaf and the
	// other has many, then ask for more than an even split.
	small := &phylo.Node{Name: "solo", Length: 2}
	big := &phylo.Node{Length: 2}
	for i := 0; i < 10; i++ {
		big.AddChild(&phylo.Node{Name: "b" + string(rune('0'+i)), Length: 1})
	}
	root := &phylo.Node{}
	root.AddChild(small)
	root.AddChild(big)
	tr := phylo.New(root)
	tr.Reindex()

	r := rand.New(rand.NewSource(9))
	got, err := WithRespectToTime(tr, 1, 7, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("sampled %d, want 7", len(got))
	}
	names := Names(got)
	if !contains(names, "solo") {
		// solo has capacity 1 and base quota >= 3; after clamping, the
		// deficit must flow to the big clade. solo itself always fits its
		// quota of min(base,1)... quota for solo is min(3 or 4, 1)=1 so it
		// is always sampled.
		t.Fatalf("solo missing from %v", names)
	}
	// Oversampling beyond total capacity fails.
	if _, err := WithRespectToTime(tr, 1, 12, r); err == nil {
		t.Fatal("oversample past capacity succeeded")
	}
	// Time beyond the tree yields ErrEmptyResult.
	if _, err := WithRespectToTime(tr, 99, 1, r); err == nil {
		t.Fatal("empty frontier succeeded")
	}
}

// TestTimeSamplingInvariantProperty: every sampled leaf must lie below a
// frontier node, counts must match, and no duplicates may occur.
func TestTimeSamplingInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomWeightedTree(r, 60)
		dist := tr.RootDistances()
		maxd := 0.0
		for _, d := range dist {
			if d > maxd {
				maxd = d
			}
		}
		time := r.Float64() * maxd * 0.8
		front := Frontier(tr, time)
		if len(front) == 0 {
			return true
		}
		capacity := 0
		for _, fn := range front {
			capacity += len(subtreeLeaves(fn))
		}
		k := 1 + r.Intn(capacity)
		got, err := WithRespectToTime(tr, time, k, r)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(got) != k {
			return false
		}
		seen := map[*phylo.Node]bool{}
		for _, n := range got {
			if seen[n] {
				return false
			}
			seen[n] = true
			if !n.IsLeaf() || dist[n] <= time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestByClade(t *testing.T) {
	tr := phylo.PaperFigure1()
	y := tr.NodeByName("Lla").Parent
	r := rand.New(rand.NewSource(5))
	got, err := ByClade(y, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Names(got), []string{"Lla", "Spy"}) {
		t.Fatalf("clade sample = %v", Names(got))
	}
	if _, err := ByClade(y, 3, r); err == nil {
		t.Fatal("clade oversample succeeded")
	}
}

func TestFromNames(t *testing.T) {
	tr := phylo.PaperFigure1()
	got, err := FromNames(tr, []string{"Bha", "Syn"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatal("wrong count")
	}
	if _, err := FromNames(tr, []string{"Bha", "Bha"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := FromNames(tr, []string{"Nope"}); err == nil {
		t.Fatal("unknown accepted")
	}
	if _, err := FromNames(tr, nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func contains(xs []string, want string) bool {
	i := sort.SearchStrings(xs, want)
	return i < len(xs) && xs[i] == want
}

func randomWeightedTree(r *rand.Rand, n int) *phylo.Tree {
	root := &phylo.Node{}
	nodes := []*phylo.Node{root}
	for len(nodes) < n {
		p := nodes[r.Intn(len(nodes))]
		c := &phylo.Node{Length: r.Float64() + 0.05}
		p.AddChild(c)
		nodes = append(nodes, c)
	}
	i := 0
	for _, nd := range nodes {
		if nd.IsLeaf() {
			nd.Name = "s" + itoa(i)
			i++
		}
	}
	t := phylo.New(root)
	t.Reindex()
	return t
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
