package newick

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/phylo"
	"repro/internal/treegen"
)

// bigTree returns a Newick string large enough to cross parallelMinInput,
// built from a deterministic Yule tree.
func bigTree(t testing.TB, leaves int) string {
	t.Helper()
	tr, err := treegen.Yule(leaves, 1.0, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	s := String(tr)
	if len(s) < parallelMinInput {
		t.Fatalf("fixture too small for parallel path: %d bytes", len(s))
	}
	return s
}

func TestParseWorkersMatchesSerial(t *testing.T) {
	in := bigTree(t, 20000)
	want, err := parseWith(&parser{in: in})
	if err != nil {
		t.Fatal(err)
	}
	wantStr := String(want)
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := ParseWorkers(in, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gotStr := String(got); gotStr != wantStr {
			t.Fatalf("workers=%d: serialization differs from serial parse", workers)
		}
		if !phylo.Equal(got, want, 0) {
			t.Fatalf("workers=%d: tree differs from serial parse", workers)
		}
	}
}

// TestParseChunkedSmallInputs forces the chunked machinery onto small trees
// by shrinking the chunk window, so span claiming, sub-parsing and stitching
// all run on inputs the production path would parse serially.
func TestParseChunkedSmallInputs(t *testing.T) {
	cases := []string{
		"(Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);",
		"(A:1,B:2);",
		"((A:1,B:2):0.5,C:3);",
		"(A:1,B:2,C:3,D:4);",
		"((((deep:1):1):1):1,top:2);",
		"leaf;",
		"('Homo sapiens':1,'It''s complicated':2);",
		// Apostrophes inside unquoted labels are plain characters; the span
		// scanner must not treat them as quote openers.
		"(A,(B'C)D'E)F;",
		"(A'B,C'D);",
		"(a[comment with ')' inside]:1,b:2);",
		"(a:1,b:2)[trailing];",
	}
	for _, in := range cases {
		want, werr := parseWith(&parser{in: in})
		for _, chunk := range []int{2, 3, 5, 8} {
			got, gerr := parseChunked(in, 4, chunk)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("chunk=%d input=%q: serial err=%v chunked err=%v", chunk, in, werr, gerr)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("chunk=%d input=%q: error mismatch: %v vs %v", chunk, in, werr, gerr)
				}
				continue
			}
			if String(got) != String(want) {
				t.Fatalf("chunk=%d input=%q: got %s want %s", chunk, in, String(got), String(want))
			}
		}
	}
}

func TestParseChunkedErrorsMatchSerial(t *testing.T) {
	cases := []string{
		"(A:1,B:2",
		"(A:1,B:2;",
		"((A,B)C,(D,E)F",
		"(A,B));",
		"(A:xx,B:1);",
		"(,);",
		"(A,(B,C)D)E extra;",
		"('unterminated:1,b:2);",
		"(a[unclosed:1,b:2);",
	}
	for _, in := range cases {
		_, werr := parseWith(&parser{in: in})
		if werr == nil {
			t.Fatalf("input %q: expected serial parse error", in)
		}
		for _, chunk := range []int{2, 4, 8} {
			_, gerr := parseChunked(in, 4, chunk)
			if gerr == nil || gerr.Error() != werr.Error() {
				t.Fatalf("chunk=%d input=%q: error mismatch: %v vs %v", chunk, in, werr, gerr)
			}
		}
	}
}

func TestScanSpansWellFormed(t *testing.T) {
	in := bigTree(t, 5000)
	chunk := chunkSizeFor(len(in), 4)
	spans := scanSpans(in, chunk, 4*chunk)
	if len(spans) == 0 {
		t.Fatalf("no spans claimed on %d-byte input with chunk %d", len(in), chunk)
	}
	prevEnd := -1
	for i, sp := range spans {
		if sp.start <= prevEnd {
			t.Fatalf("span %d overlaps previous: start %d prevEnd %d", i, sp.start, prevEnd)
		}
		if sp.end <= sp.start || sp.end > len(in) {
			t.Fatalf("span %d bounds out of range: [%d,%d)", i, sp.start, sp.end)
		}
		if in[sp.start] != '(' || in[sp.end-1] != ')' {
			t.Fatalf("span %d not parenthesis-delimited: %q..%q", i, in[sp.start], in[sp.end-1])
		}
		if size := sp.end - sp.start; size < chunk || size > 4*chunk {
			t.Fatalf("span %d size %d outside [%d,%d]", i, size, chunk, 4*chunk)
		}
		prevEnd = sp.end
	}
}

func TestParseWorkersShapes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	shapes := map[string]*phylo.Tree{}
	if tr, err := treegen.Yule(3000, 1.0, r); err == nil {
		shapes["yule"] = tr
	} else {
		t.Fatal(err)
	}
	if tr, err := treegen.Caterpillar(2000, r); err == nil {
		shapes["caterpillar"] = tr
	} else {
		t.Fatal(err)
	}
	shapes["single-leaf"] = phylo.New(&phylo.Node{Name: "only"})
	for name, tr := range shapes {
		in := String(tr)
		want, err := parseWith(&parser{in: in})
		if err != nil {
			t.Fatalf("%s: serial parse: %v", name, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			// Force the chunked path regardless of input size.
			got, err := parseChunked(in, workers, 1024)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if String(got) != String(want) {
				t.Fatalf("%s workers=%d: serialization differs", name, workers)
			}
		}
	}
}

// FuzzParseChunked asserts the chunked parser agrees with the serial parser
// on arbitrary inputs: same tree bytes or the same error.
func FuzzParseChunked(f *testing.F) {
	seeds := []string{
		"(Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);",
		"(A:1,B:2);",
		"((A:1,B:2):0.5,C:3);",
		"((((deep:1):1):1):1,top:2);",
		"(A:0.1,B:1e-05);",
		"('Homo sapiens':1,'It''s complicated':2);",
		"(A,(B'C)D'E)F;",
		"(a[comment]:1,b:2);",
		"(A:1,B:2",
		"(A,B));",
		"(,);",
		"'",
		"[",
		"((a,b),(c,d),(e,f),(g,h));",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		want, werr := parseWith(&parser{in: in})
		for _, chunk := range []int{3, 16} {
			got, gerr := parseChunked(in, 4, chunk)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("chunk=%d: serial err=%v chunked err=%v", chunk, werr, gerr)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("chunk=%d: error mismatch: %q vs %q", chunk, werr, gerr)
				}
				continue
			}
			if String(got) != String(want) {
				t.Fatalf("chunk=%d: tree mismatch: %q vs %q", chunk, String(got), String(want))
			}
		}
	})
}

func TestParseDelegatesToWorkers(t *testing.T) {
	in := bigTree(t, 20000)
	a, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseWith(&parser{in: in})
	if err != nil {
		t.Fatal(err)
	}
	if String(a) != String(b) {
		t.Fatal("Parse output differs from serial parse on large input")
	}
	if !strings.HasSuffix(String(a), ";") {
		t.Fatal("serialization lost terminator")
	}
}
