package newick

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/phylo"
)

func TestParseFigure1(t *testing.T) {
	in := "(Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);"
	tr, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	want := phylo.PaperFigure1()
	if !phylo.Equal(tr, want, 1e-12) {
		t.Fatalf("parsed tree differs from PaperFigure1:\n got %s\nwant %s", String(tr), String(want))
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []string{
		"(A:1,B:2);",
		"((A:1,B:2):0.5,C:3);",
		"(A:1,B:2,C:3,D:4);",
		"((((deep:1):1):1):1,top:2);",
		"(A:0.1,B:1e-05);",
	}
	for _, in := range cases {
		tr, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out := String(tr)
		tr2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse(%q): %v", out, err)
		}
		if !phylo.Equal(tr, tr2, 1e-12) {
			t.Fatalf("round trip changed tree: %q -> %q", in, out)
		}
	}
}

func TestQuotedLabels(t *testing.T) {
	in := "('Homo sapiens':1,'It''s complicated':2);"
	tr, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeByName("Homo sapiens") == nil {
		t.Fatalf("quoted label with space lost: %v", tr.LeafNames())
	}
	if tr.NodeByName("It's complicated") == nil {
		t.Fatalf("escaped quote lost: %v", tr.LeafNames())
	}
	out := String(tr)
	tr2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if tr2.NodeByName("It's complicated") == nil {
		t.Fatal("quote escaping not reversible")
	}
}

func TestUnderscoreMeansSpace(t *testing.T) {
	tr, err := Parse("(Homo_sapiens:1,Pan:2);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeByName("Homo sapiens") == nil {
		t.Fatalf("underscore not converted: %v", tr.LeafNames())
	}
}

func TestComments(t *testing.T) {
	tr, err := Parse("[&R] (A[comment]:1,B:2[another]);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 2 || tr.NodeByName("A") == nil {
		t.Fatalf("comments broke parse: %v", tr.LeafNames())
	}
}

func TestInteriorNames(t *testing.T) {
	tr, err := Parse("((A:1,B:1)AB:2,C:1)root;")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeByName("AB") == nil || tr.NodeByName("root") == nil {
		t.Fatal("interior names lost")
	}
	out := String(tr)
	if !strings.Contains(out, "AB") {
		t.Fatalf("interior name not written: %s", out)
	}
	bare := func() string {
		var sb strings.Builder
		Write(&sb, tr, Options{Lengths: false, InteriorNames: false})
		return sb.String()
	}()
	if strings.Contains(bare, "AB") || strings.Contains(bare, ":") {
		t.Fatalf("options ignored: %s", bare)
	}
}

func TestScientificNotationLengths(t *testing.T) {
	tr, err := Parse("(A:1.5e-3,B:2E+2);")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.NodeByName("A").Length-0.0015) > 1e-15 {
		t.Fatalf("A length = %g", tr.NodeByName("A").Length)
	}
	if math.Abs(tr.NodeByName("B").Length-200) > 1e-12 {
		t.Fatalf("B length = %g", tr.NodeByName("B").Length)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(A:1,B:2",     // unclosed paren
		"(A:1,B:2));",  // trailing garbage
		"(A:,B:1);",    // missing length after colon
		"(A:1 B:2);",   // missing comma
		"('unterm:1);", // unterminated quote
		"(,);",         // empty nodes
		"(A:1,B:abc);", // non-numeric length
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestParseAll(t *testing.T) {
	trees, err := ParseAll("(A:1,B:2); (C:1,D:2);\n(E:1,F:2);")
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 3 {
		t.Fatalf("ParseAll returned %d trees", len(trees))
	}
	if trees[2].NodeByName("F") == nil {
		t.Fatal("third tree wrong")
	}
}

func TestMissingSemicolonTolerated(t *testing.T) {
	tr, err := Parse("(A:1,B:2)")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 2 {
		t.Fatal("tree wrong without semicolon")
	}
}

// TestRoundTripProperty: any tree built from a random nested structure
// survives a write/parse cycle.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTree(seed)
		out := String(tr)
		tr2, err := Parse(out)
		if err != nil {
			t.Logf("Parse(%q): %v", out, err)
			return false
		}
		return phylo.Equal(tr, tr2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomTree builds a small deterministic random tree from a seed, using
// only name characters that exercise quoting paths.
func randomTree(seed int64) *phylo.Tree {
	state := uint64(seed)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	leafNames := []string{"A", "B with space", "C's", "D_und", "E:colon", "F"}
	var id int
	var build func(depth int) *phylo.Node
	build = func(depth int) *phylo.Node {
		if depth >= 4 || next(3) == 0 {
			n := &phylo.Node{Name: leafNames[next(len(leafNames))] + itoa(id), Length: float64(next(100)) / 8}
			id++
			return n
		}
		n := &phylo.Node{Length: float64(next(100)) / 8}
		kids := 2 + next(3)
		for i := 0; i < kids; i++ {
			n.AddChild(build(depth + 1))
		}
		return n
	}
	root := &phylo.Node{}
	root.AddChild(build(1))
	root.AddChild(build(1))
	tr := phylo.New(root)
	tr.Reindex()
	return tr
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}
