package newick

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/phylo"
)

// parallelMinInput is the input size below which ParseWorkers always takes
// the serial path: chunk scanning and goroutine startup cost more than they
// save on small trees.
const parallelMinInput = 64 << 10

// chunkSpan is one balanced-parenthesis region claimed by the chunk scanner:
// in[start] is '(' and in[end-1] is its matching ')'. A worker parses the
// span into root's children; the stitch pass splices root in when the serial
// remainder parse reaches offset start.
type chunkSpan struct {
	start int
	end   int
	root  *phylo.Node
	err   error
}

// ParseWorkers parses a single Newick tree like Parse, distributing subtree
// parsing over up to workers goroutines. workers <= 0 means GOMAXPROCS.
// The result — tree shape, labels, lengths, preorder ids, and any error —
// is identical to the serial parser's.
func ParseWorkers(s string, workers int) (*phylo.Tree, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(s) < parallelMinInput {
		return parseWith(&parser{in: s})
	}
	return parseChunked(s, workers, chunkSizeFor(len(s), workers))
}

// chunkSizeFor picks a target span size: enough spans to keep workers busy,
// but large enough that per-span overhead stays negligible.
func chunkSizeFor(n, workers int) int {
	c := n / (8 * workers)
	if c < 16<<10 {
		c = 16 << 10
	}
	if c > 256<<10 {
		c = 256 << 10
	}
	return c
}

func parseChunked(s string, workers, chunk int) (*phylo.Tree, error) {
	spans := scanSpans(s, chunk, 4*chunk)
	if len(spans) < 2 {
		return parseWith(&parser{in: s})
	}
	if workers > len(spans) {
		workers = len(spans)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				sp := spans[i]
				// The sub-parser sees the full prefix with absolute offsets
				// so error positions match the serial parse byte-for-byte;
				// capping at sp.end keeps it inside its claimed region.
				p := &parser{in: s[:sp.end], pos: sp.start}
				n := &phylo.Node{}
				if err := p.parseGroup(n); err != nil {
					sp.err = err
					continue
				}
				sp.root = n
			}
		}()
	}
	wg.Wait()
	byStart := make(map[int]*chunkSpan, len(spans))
	for _, sp := range spans {
		byStart[sp.start] = sp
	}
	return parseWith(&parser{in: s, spans: byStart})
}

// scanSpans walks s with a lexical scanner that mirrors the parser's view of
// quotes, bracket comments, and parentheses, and claims disjoint, non-nested
// balanced "(...)" spans whose size falls in [chunk, maxSpan]. The scanner
// never misreads structure on inputs the parser accepts: both treat '[...]'
// as a comment anywhere between tokens, "'...'" (with ” escapes) as an
// opaque label, and any other byte as label/number material. On malformed
// inputs the scan may claim spans the parser would reject — the sub-parse of
// such a span then fails at exactly the offset the serial parser would, so
// errors are identical too.
func scanSpans(s string, chunk, maxSpan int) []*chunkSpan {
	var spans []*chunkSpan
	var stack []int
	claimedEnd := -1
	i := 0
	for i < len(s) {
		switch c := s[i]; c {
		case '(':
			stack = append(stack, i)
			i++
		case ')':
			i++
			if len(stack) == 0 {
				continue
			}
			start := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size := i - start
			if start > claimedEnd && size >= chunk && size <= maxSpan {
				spans = append(spans, &chunkSpan{start: start, end: i})
				claimedEnd = i
			}
		case '[':
			end := strings.IndexByte(s[i:], ']')
			if end < 0 {
				return spans
			}
			i += end + 1
		case '\'':
			i++
			for i < len(s) {
				if s[i] == '\'' {
					if i+1 < len(s) && s[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
		case ',', ':', ';', ' ', '\t', '\n', '\r':
			i++
		default:
			// Unquoted label or number run. Apostrophes inside a run are
			// plain characters to the parser, so only a quote at a token
			// boundary (handled above) opens a quoted label.
			for i < len(s) && !isRunDelim(s[i]) {
				i++
			}
		}
	}
	return spans
}

// isRunDelim reports the bytes that terminate an unquoted label or number,
// matching parseLabel's delimiter set.
func isRunDelim(c byte) bool {
	switch c {
	case ',', ')', '(', ':', ';', '[', ' ', '\t', '\n', '\r':
		return true
	}
	return false
}
