package newick

import (
	"bufio"
	"io"
	"strconv"
)

// EmitChunkSize is the Emitter's internal buffer size: the peak memory an
// incremental serialization holds regardless of tree size. Streaming
// exports of arbitrarily large trees allocate this once, instead of
// materializing the whole Newick string.
const EmitChunkSize = 8 << 10

// Emitter writes a Newick tree incrementally, in the exact format
// Write/String produce (lengths and interior names included), without ever
// holding more than EmitChunkSize bytes of output. The caller drives it
// with the tree's structure in preorder:
//
//	OpenClade()                — entering an interior node: "("
//	Sibling()                  — between two children: ","
//	Leaf(name, len, withLen)   — a leaf: "name:len"
//	CloseClade(name, len, wl)  — leaving an interior node: ")name:len"
//	End()                      — ";" + flush; returns the first write error
//
// Write errors are sticky: once the underlying writer fails, subsequent
// calls are no-ops and End reports the error. An Emitter is for use by one
// goroutine.
type Emitter struct {
	w       *bufio.Writer
	err     error
	scratch []byte // float formatting buffer, reused across calls
}

// NewEmitter returns an Emitter over w, buffering in EmitChunkSize chunks.
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: bufio.NewWriterSize(w, EmitChunkSize), scratch: make([]byte, 0, 32)}
}

func (e *Emitter) writeString(s string) {
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *Emitter) writeByte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *Emitter) writeLabel(name string, length float64, withLength bool) {
	e.writeString(quoteLabel(name))
	if withLength {
		e.writeByte(':')
		e.scratch = strconv.AppendFloat(e.scratch[:0], length, 'g', -1, 64)
		if e.err == nil {
			_, e.err = e.w.Write(e.scratch)
		}
	}
}

// OpenClade begins an interior node's child list.
func (e *Emitter) OpenClade() { e.writeByte('(') }

// Sibling separates two children of the current clade.
func (e *Emitter) Sibling() { e.writeByte(',') }

// Leaf emits a leaf node; withLength includes the ":length" suffix (false
// for a root that is its own leaf, matching Write's no-length-on-root).
func (e *Emitter) Leaf(name string, length float64, withLength bool) {
	e.writeLabel(name, length, withLength)
}

// CloseClade ends an interior node's child list and emits its own label.
func (e *Emitter) CloseClade(name string, length float64, withLength bool) {
	e.writeByte(')')
	e.writeLabel(name, length, withLength)
}

// Err reports the sticky write error, if any. Producers driving the
// emitter from a scan should bail out once it is non-nil — every further
// emit would be a no-op against a dead sink.
func (e *Emitter) Err() error { return e.err }

// End terminates the tree with ";", flushes, and reports the first error
// encountered anywhere in the emission.
func (e *Emitter) End() error {
	e.writeByte(';')
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}
