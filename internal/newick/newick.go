// Package newick parses and serializes trees in Newick format, the tree
// description language embedded in NEXUS TREES blocks. It supports quoted
// labels, underscore-as-space convention, branch lengths, interior labels
// and bracket comments.
package newick

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/phylo"
)

// ErrSyntax wraps all parse errors.
var ErrSyntax = errors.New("newick: syntax error")

// Parse reads a single Newick tree from s (terminated by ';', which may be
// omitted at end of input). Inputs at or above the parallel size threshold
// are parsed by the chunked concurrent parser (see ParseWorkers), which
// produces a tree identical to the serial parse.
func Parse(s string) (*phylo.Tree, error) {
	return ParseWorkers(s, 0)
}

// parseWith runs the whole-input grammar on an already-configured parser:
// one tree, optional trailing ';', nothing after.
func parseWith(p *parser) (*phylo.Tree, error) {
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing input at offset %d", ErrSyntax, p.pos)
	}
	t := phylo.New(root)
	t.Reindex()
	return t, nil
}

// ParseAll reads consecutive ';'-terminated trees from s.
func ParseAll(s string) ([]*phylo.Tree, error) {
	var out []*phylo.Tree
	p := &parser{in: s}
	for {
		p.skipSpace()
		if p.pos >= len(p.in) {
			return out, nil
		}
		root, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos < len(p.in) {
			if p.in[p.pos] != ';' {
				return nil, fmt.Errorf("%w: expected ';' at offset %d", ErrSyntax, p.pos)
			}
			p.pos++
		}
		t := phylo.New(root)
		t.Reindex()
		out = append(out, t)
	}
}

type parser struct {
	in  string
	pos int
	// spans, when non-nil, maps byte offsets of '(' characters to subtree
	// groups already parsed by the chunked concurrent parser; parseNode
	// splices the pre-built children in instead of re-parsing the bytes.
	spans map[int]*chunkSpan
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		case c == '[': // bracket comment
			end := strings.IndexByte(p.in[p.pos:], ']')
			if end < 0 {
				p.pos = len(p.in)
				return
			}
			p.pos += end + 1
		default:
			return
		}
	}
}

func (p *parser) peek() (byte, bool) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0, false
	}
	return p.in[p.pos], true
}

// parseNode parses "(child,child,...)label:length" or "label:length".
func (p *parser) parseNode() (*phylo.Node, error) {
	n := &phylo.Node{}
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("%w: unexpected end of input", ErrSyntax)
	}
	if c == '(' {
		if sp, ok := p.spans[p.pos]; ok {
			if sp.err != nil {
				return nil, sp.err
			}
			n = sp.root
			p.pos = sp.end
		} else if err := p.parseGroup(n); err != nil {
			return nil, err
		}
	}
	name, err := p.parseLabel()
	if err != nil {
		return nil, err
	}
	n.Name = name
	if c, ok = p.peek(); ok && c == ':' {
		p.pos++
		length, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		n.Length = length
	}
	if n.Name == "" && len(n.Children) == 0 {
		return nil, fmt.Errorf("%w: empty node at offset %d", ErrSyntax, p.pos)
	}
	return n, nil
}

// parseGroup parses a parenthesized child list "(child,child,...)" into n,
// leaving the group's trailing label and branch length to the caller.
// p.pos must be at the '('.
func (p *parser) parseGroup(n *phylo.Node) error {
	p.pos++
	for {
		child, err := p.parseNode()
		if err != nil {
			return err
		}
		n.AddChild(child)
		c, ok := p.peek()
		if !ok {
			return fmt.Errorf("%w: unclosed '('", ErrSyntax)
		}
		if c == ',' {
			p.pos++
			continue
		}
		if c == ')' {
			p.pos++
			return nil
		}
		return fmt.Errorf("%w: expected ',' or ')' at offset %d", ErrSyntax, p.pos)
	}
}

func (p *parser) parseLabel() (string, error) {
	c, ok := p.peek()
	if !ok {
		return "", nil
	}
	if c == '\'' {
		return p.parseQuoted()
	}
	start := p.pos
	for p.pos < len(p.in) {
		c = p.in[p.pos]
		if c == ',' || c == ')' || c == '(' || c == ':' || c == ';' || c == '[' ||
			c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			break
		}
		p.pos++
	}
	// Underscores in unquoted labels conventionally denote spaces.
	return strings.ReplaceAll(p.in[start:p.pos], "_", " "), nil
}

func (p *parser) parseQuoted() (string, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '\'' {
			if p.pos+1 < len(p.in) && p.in[p.pos+1] == '\'' {
				sb.WriteByte('\'')
				p.pos += 2
				continue
			}
			p.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return "", fmt.Errorf("%w: unterminated quoted label", ErrSyntax)
}

func (p *parser) parseNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, fmt.Errorf("%w: expected branch length at offset %d", ErrSyntax, p.pos)
	}
	v, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad branch length %q", ErrSyntax, p.in[start:p.pos])
	}
	return v, nil
}

// Options control serialization.
type Options struct {
	// Lengths includes branch lengths (":1.5") when true.
	Lengths bool
	// InteriorNames includes names of interior nodes when true.
	InteriorNames bool
}

// DefaultOptions writes branch lengths and interior names.
var DefaultOptions = Options{Lengths: true, InteriorNames: true}

// Write serializes the tree to w in Newick format, ending with ";".
func Write(w io.Writer, t *phylo.Tree, opt Options) error {
	if t.Root == nil {
		_, err := io.WriteString(w, ";")
		return err
	}
	var sb strings.Builder
	writeNode(&sb, t.Root, opt)
	sb.WriteByte(';')
	_, err := io.WriteString(w, sb.String())
	return err
}

// String serializes the tree with default options.
func String(t *phylo.Tree) string {
	var sb strings.Builder
	if err := Write(&sb, t, DefaultOptions); err != nil {
		return ""
	}
	return sb.String()
}

func writeNode(sb *strings.Builder, n *phylo.Node, opt Options) {
	if len(n.Children) > 0 {
		sb.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeNode(sb, c, opt)
		}
		sb.WriteByte(')')
		if opt.InteriorNames {
			sb.WriteString(quoteLabel(n.Name))
		}
	} else {
		sb.WriteString(quoteLabel(n.Name))
	}
	if opt.Lengths && n.Parent != nil {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(n.Length, 'g', -1, 64))
	}
}

// quoteLabel renders a label safely: plain if alphanumeric, otherwise
// quoted with ” escaping, with spaces written as underscores when safe.
func quoteLabel(s string) string {
	if s == "" {
		return ""
	}
	needQuote := false
	hasSpace := false
	for _, r := range s {
		switch {
		case r == ' ':
			hasSpace = true
		case r == '_' || strings.ContainsRune("(),:;[]'", r):
			needQuote = true
		}
	}
	if needQuote {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	if hasSpace {
		return strings.ReplaceAll(s, " ", "_")
	}
	return s
}
