package dewey

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/phylo"
)

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		want Label
	}{
		{"", Label{}},
		{"2.1.1", Label{2, 1, 1}},
		{"7", Label{7}},
		{"1.2.3.4.5", Label{1, 2, 3, 4, 5}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if Compare(got, c.want) != 0 {
			t.Fatalf("Parse(%q) = %v", c.in, got)
		}
		if got.String() != c.in {
			t.Fatalf("String round trip: %q -> %q", c.in, got.String())
		}
	}
	for _, bad := range []string{"0", "2..1", "a.b", "-1", "2.0"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestCompareAndLCP(t *testing.T) {
	lla := Label{2, 1, 1}
	spy := Label{2, 1, 2}
	if Compare(lla, spy) >= 0 {
		t.Fatal("2.1.1 not before 2.1.2")
	}
	// The paper: LCA of Lla (2.1.1) and Spy (2.1.2) is (2.1).
	if got := LCP(lla, spy); got.String() != "2.1" {
		t.Fatalf("LCP = %q, want 2.1", got.String())
	}
	// Prefix sorts before extension (preorder).
	if Compare(Label{2, 1}, lla) >= 0 {
		t.Fatal("prefix not before extension")
	}
	if Compare(lla, lla) != 0 {
		t.Fatal("self compare != 0")
	}
	if Compare(Label{3}, lla) <= 0 {
		t.Fatal("3 not after 2.1.1")
	}
}

func TestAncestorOrSelf(t *testing.T) {
	root := Label{}
	x := Label{2}
	lla := Label{2, 1, 1}
	if !root.AncestorOrSelf(lla) || !x.AncestorOrSelf(lla) || !lla.AncestorOrSelf(lla) {
		t.Fatal("ancestor tests failed")
	}
	if lla.AncestorOrSelf(x) {
		t.Fatal("descendant reported as ancestor")
	}
	if (Label{3}).AncestorOrSelf(lla) {
		t.Fatal("sibling reported as ancestor")
	}
}

func TestKeyOrderMatchesCompare(t *testing.T) {
	f := func(a, b []uint32) bool {
		la := make(Label, 0, len(a))
		for _, v := range a {
			la = append(la, v%1000+1)
		}
		lb := make(Label, 0, len(b))
		for _, v := range b {
			lb = append(lb, v%1000+1)
		}
		return bytes.Compare(la.Key(), lb.Key()) == Compare(la, lb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	l := Label{2, 1, 1, 99999}
	got, err := FromKey(l.Key())
	if err != nil {
		t.Fatal(err)
	}
	if Compare(l, got) != 0 {
		t.Fatalf("FromKey = %v", got)
	}
	if _, err := FromKey([]byte{1, 2, 3}); err == nil {
		t.Fatal("FromKey of odd length succeeded")
	}
}

func TestChildParent(t *testing.T) {
	l := Label{2, 1}
	c := l.Child(3)
	if c.String() != "2.1.3" {
		t.Fatalf("Child = %s", c)
	}
	p, ok := c.Parent()
	if !ok || Compare(p, l) != 0 {
		t.Fatalf("Parent = %v %v", p, ok)
	}
	if _, ok := (Label{}).Parent(); ok {
		t.Fatal("root has a parent")
	}
}

func TestBuildPlainFigure1(t *testing.T) {
	tr := phylo.PaperFigure1()
	ix := BuildPlain(tr)
	// The paper's labels: Lla = (2.1.1), Spy = (2.1.2).
	lla := tr.NodeByName("Lla")
	spy := tr.NodeByName("Spy")
	if got := ix.Label(lla.ID).String(); got != "2.1.1" {
		t.Fatalf("Label(Lla) = %s, want 2.1.1", got)
	}
	if got := ix.Label(spy.ID).String(); got != "2.1.2" {
		t.Fatalf("Label(Spy) = %s, want 2.1.2", got)
	}
	// LCA(Lla, Spy) is the interior node labeled (2.1).
	lcaID := ix.LCA(lla.ID, spy.ID)
	if got := ix.Label(lcaID).String(); got != "2.1" {
		t.Fatalf("LCA label = %s, want 2.1", got)
	}
	if tr.Nodes()[lcaID] != lla.Parent {
		t.Fatal("LCA is not Lla's parent")
	}
	// Root checks.
	if got := ix.Label(tr.Root.ID).String(); got != "" {
		t.Fatalf("root label = %q", got)
	}
	syn := tr.NodeByName("Syn")
	if ix.LCA(syn.ID, lla.ID) != tr.Root.ID {
		t.Fatal("LCA(Syn, Lla) != root")
	}
	if !ix.IsAncestor(tr.Root.ID, lla.ID) || ix.IsAncestor(lla.ID, tr.Root.ID) {
		t.Fatal("IsAncestor wrong")
	}
	if ix.Compare(syn.ID, lla.ID) >= 0 {
		t.Fatal("Syn (1) should precede Lla (2.1.1)")
	}
}

func TestPlainMatchesNaiveLCA(t *testing.T) {
	tr := phylo.PaperFigure1()
	ix := BuildPlain(tr)
	nodes := tr.Nodes()
	for _, a := range nodes {
		for _, b := range nodes {
			want := phylo.LCA(a, b)
			if got := nodes[ix.LCA(a.ID, b.ID)]; got != want {
				t.Fatalf("LCA(%s,%s) = %s, want %s", a.Name, b.Name, got.Name, want.Name)
			}
		}
	}
}

func TestLabelSizeGrowsWithDepth(t *testing.T) {
	// A caterpillar of depth d gives labels of size O(d) — the overhead
	// the paper's hierarchical scheme removes.
	depth := 100
	root := &phylo.Node{}
	cur := root
	for i := 0; i < depth; i++ {
		leaf := &phylo.Node{Name: "L" + itoa(i), Length: 1}
		next := &phylo.Node{Length: 1}
		cur.AddChild(leaf)
		cur.AddChild(next)
		cur = next
	}
	cur.Name = "tip"
	tr := phylo.New(root)
	tr.Reindex()
	ix := BuildPlain(tr)
	if got := ix.MaxLabelLen(); got != depth {
		t.Fatalf("MaxLabelLen = %d, want %d", got, depth)
	}
	if ix.TotalLabelBytes() < 4*depth*depth/2 {
		t.Fatalf("TotalLabelBytes = %d suspiciously small", ix.TotalLabelBytes())
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
