// Package dewey implements the classic Dewey labeling scheme for trees
// (reference [11] of the paper): every node is addressed by the sequence of
// child ordinals on its root path, so ancestor tests are prefix tests and
// the least common ancestor is the longest common prefix. Crimson's
// hierarchical scheme (package core) bounds these labels by decomposing the
// tree; this package provides the plain, unbounded variant used directly on
// shallow trees and as the baseline the paper compares against on deep ones.
package dewey

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/phylo"
)

// Label is a Dewey label: the 1-based child ordinals along the path from
// the root. The root's label is empty. Labels print as "2.1.1" like the
// paper's examples.
type Label []uint32

// ErrBadLabel is returned by Parse for malformed label text.
var ErrBadLabel = errors.New("dewey: bad label")

// Parse converts "2.1.1" into a Label. The empty string is the root.
func Parse(s string) (Label, error) {
	if s == "" {
		return Label{}, nil
	}
	parts := strings.Split(s, ".")
	out := make(Label, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("%w: component %q", ErrBadLabel, p)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// String renders the label in the paper's dotted form; the root is "".
func (l Label) String() string {
	if len(l) == 0 {
		return ""
	}
	parts := make([]string, len(l))
	for i, c := range l {
		parts[i] = strconv.FormatUint(uint64(c), 10)
	}
	return strings.Join(parts, ".")
}

// Len returns the number of components (the node's depth).
func (l Label) Len() int { return len(l) }

// Child returns the label of this node's i-th child (1-based).
func (l Label) Child(i uint32) Label {
	out := make(Label, len(l)+1)
	copy(out, l)
	out[len(l)] = i
	return out
}

// Parent returns the parent label, or nil for the root.
func (l Label) Parent() (Label, bool) {
	if len(l) == 0 {
		return nil, false
	}
	return append(Label(nil), l[:len(l)-1]...), true
}

// Compare orders labels in document (preorder) order: component-wise
// numeric comparison, with a prefix ordering before its extensions.
func Compare(a, b Label) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// LCP returns the longest common prefix of a and b — per the paper, the
// label of their least common ancestor.
func LCP(a, b Label) Label {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return append(Label(nil), a[:i]...)
}

// AncestorOrSelf reports whether a is a (non-strict) ancestor of b,
// i.e. a is a prefix of b.
func (l Label) AncestorOrSelf(b Label) bool {
	if len(l) > len(b) {
		return false
	}
	for i, c := range l {
		if b[i] != c {
			return false
		}
	}
	return true
}

// Key returns an order-preserving byte encoding (4 bytes big-endian per
// component) suitable as a B+tree key: bytewise comparison of keys matches
// Compare on labels.
func (l Label) Key() []byte {
	out := make([]byte, 4*len(l))
	for i, c := range l {
		binary.BigEndian.PutUint32(out[4*i:], c)
	}
	return out
}

// FromKey decodes a Key back into a Label.
func FromKey(key []byte) (Label, error) {
	if len(key)%4 != 0 {
		return nil, fmt.Errorf("%w: key length %d", ErrBadLabel, len(key))
	}
	out := make(Label, len(key)/4)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	return out, nil
}

// Size returns the encoded size of the label in bytes. This is the storage
// metric the paper argues grows without bound on deep trees.
func (l Label) Size() int { return 4 * len(l) }

// PlainIndex assigns every node of a tree its full (unbounded) Dewey label
// and answers LCA queries by longest-common-prefix plus a label lookup. On
// a tree of depth d it stores O(d) bytes per node — the overhead the
// hierarchical scheme in package core eliminates.
type PlainIndex struct {
	labels  []Label        // indexed by node ID (preorder)
	byLabel map[string]int // label key -> node ID
}

// BuildPlain labels the tree. The tree must have preorder IDs (Reindex).
func BuildPlain(t *phylo.Tree) *PlainIndex {
	nodes := t.Nodes()
	ix := &PlainIndex{
		labels:  make([]Label, len(nodes)),
		byLabel: make(map[string]int, len(nodes)),
	}
	for _, n := range nodes {
		var lbl Label
		if n.Parent != nil {
			parent := ix.labels[n.Parent.ID]
			ord := uint32(0)
			for i, c := range n.Parent.Children {
				if c == n {
					ord = uint32(i + 1)
					break
				}
			}
			lbl = parent.Child(ord)
		} else {
			lbl = Label{}
		}
		ix.labels[n.ID] = lbl
		ix.byLabel[string(lbl.Key())] = n.ID
	}
	return ix
}

// Label returns the label of node id.
func (ix *PlainIndex) Label(id int) Label { return ix.labels[id] }

// LCA returns the node ID of the least common ancestor of a and b, found
// as the longest common prefix of their labels (paper §2.1).
func (ix *PlainIndex) LCA(a, b int) int {
	return ix.byLabel[string(LCP(ix.labels[a], ix.labels[b]).Key())]
}

// IsAncestor reports whether a is a (non-strict) ancestor of b.
func (ix *PlainIndex) IsAncestor(a, b int) bool {
	return ix.labels[a].AncestorOrSelf(ix.labels[b])
}

// Compare orders nodes a and b in preorder via their labels.
func (ix *PlainIndex) Compare(a, b int) int {
	return Compare(ix.labels[a], ix.labels[b])
}

// TotalLabelBytes sums the encoded size of all labels — the index storage
// footprint reported in the paper-claim benchmarks.
func (ix *PlainIndex) TotalLabelBytes() int {
	total := 0
	for _, l := range ix.labels {
		total += l.Size()
	}
	return total
}

// MaxLabelLen returns the longest label length in components.
func (ix *PlainIndex) MaxLabelLen() int {
	max := 0
	for _, l := range ix.labels {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}
