// Package shard partitions Crimson's repository across N independent
// storage shards. Each shard is a complete relational database — its own
// page file, WAL, buffer pool and epoch machinery — living in a per-shard
// directory, and trees are placed on shards by a deterministic hash of the
// tree name. Because trees are the unit of placement and every tree's
// relations live wholly on one shard, the public repository API is
// unchanged: a router maps each tree-scoped operation to its shard, and
// cross-shard operations (listing, integrity checks, snapshots) fan out
// and merge.
//
// The shard count is fixed at creation and persisted in a manifest file,
// so reopening validates the layout instead of silently scattering trees
// under a different hash modulus.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/internal/relstore"
)

// Layout is the placement scheme recorded in the manifest. There is one
// scheme today; the field exists so a future range- or directory-based
// placement can coexist with hashed layouts.
const Layout = "hash/fnv1a64"

// ManifestName is the manifest's file name inside a sharded repository
// directory.
const ManifestName = "crimson-manifest.json"

// ErrShardMismatch is returned when a repository's manifest disagrees with
// the shard count the caller asked for.
var ErrShardMismatch = errors.New("shard: manifest shard count mismatch")

// ErrNoManifest is returned when a directory holds no readable manifest.
var ErrNoManifest = errors.New("shard: no manifest")

// Router deterministically places tree names on shards. The placement is a
// pure function of (name, shard count): the same name lands on the same
// shard across processes and reopens, which is what lets the on-disk
// layout be reopened without any per-tree placement table.
type Router struct {
	n int
}

// NewRouter returns a router over n shards (n >= 1).
func NewRouter(n int) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d, want >= 1", n)
	}
	return &Router{n: n}, nil
}

// Single is the 1-shard router: every name places on shard 0. It is what
// single-database repositories route with.
var Single = &Router{n: 1}

// N reports the shard count.
func (r *Router) N() int { return r.n }

// Place returns the shard index for a tree name: FNV-1a over the name,
// reduced mod N. Stable across processes and Go versions.
func (r *Router) Place(name string) int {
	if r.n == 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	return int(h.Sum64() % uint64(r.n))
}

// Manifest is the persisted description of a sharded repository layout.
type Manifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Layout  string `json:"layout"`
}

// manifestVersion is the current manifest format version.
const manifestVersion = 1

// NewManifest returns a manifest for n shards under the current layout.
func NewManifest(n int) Manifest {
	return Manifest{Version: manifestVersion, Shards: n, Layout: Layout}
}

// WriteManifest persists the manifest into dir.
func WriteManifest(dir string, m Manifest) error {
	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	return os.WriteFile(filepath.Join(dir, ManifestName), enc, 0o644)
}

// ReadManifest loads the manifest from dir. A missing file reports
// ErrNoManifest so callers can distinguish "not a sharded repository" from
// a corrupt one.
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Manifest{}, fmt.Errorf("%w in %s", ErrNoManifest, dir)
		}
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("shard: parsing manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("shard: manifest version %d in %s, want %d", m.Version, dir, manifestVersion)
	}
	if m.Shards < 1 {
		return Manifest{}, fmt.Errorf("shard: manifest in %s declares %d shards", dir, m.Shards)
	}
	if m.Layout != Layout {
		return Manifest{}, fmt.Errorf("shard: manifest layout %q in %s, want %q", m.Layout, dir, Layout)
	}
	return m, nil
}

// Validate checks a requested shard count against the manifest. want == 0
// means "whatever the manifest says".
func (m Manifest) Validate(want int) error {
	if want != 0 && want != m.Shards {
		return fmt.Errorf("%w: repository has %d shards, --shards asked for %d", ErrShardMismatch, m.Shards, want)
	}
	return nil
}

// Dir returns the directory of shard i inside a sharded repository.
func Dir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// PageFile returns the page-file path of shard i (its WAL lives next to it
// at the storage layer's usual "+.wal" suffix).
func PageFile(root string, i int) string {
	return filepath.Join(Dir(root, i), "crimson.db")
}

// CheckAll verifies the integrity of every shard, wrapping failures with
// the shard index so fsck output points at the broken shard.
func CheckAll(dbs []*relstore.DB) error {
	for i, db := range dbs {
		if err := db.Check(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// CloseAll closes every shard, continuing past failures and returning the
// joined error: one shard's broken close must not leave the other shards'
// WALs unflushed.
func CloseAll(dbs []*relstore.DB) error {
	var errs []error
	for i, db := range dbs {
		if err := db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
