package shard

import (
	"errors"
	"fmt"
	"testing"
)

// TestPlacementDeterministic pins the placement function: the same name
// must land on the same shard across router instances (and, because the
// hash is FNV-1a over the bytes, across processes and reopens — the
// on-disk layout depends on it).
func TestPlacementDeterministic(t *testing.T) {
	r1, err := NewRouter(8)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRouter(8)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("tree-%d", i)
		a, b := r1.Place(name), r2.Place(name)
		if a != b {
			t.Fatalf("placement of %q differs between router instances: %d vs %d", name, a, b)
		}
		if a < 0 || a >= 8 {
			t.Fatalf("placement of %q = %d, out of range", name, a)
		}
	}
	// Golden values: changing the hash or modulus scheme would strand
	// every tree of every existing sharded repository on the wrong shard.
	golden := map[string]int{"gold": 3, "flux": 2, "tree": 5, "a": 4}
	for name, want := range golden {
		if got := r1.Place(name); got != want {
			t.Fatalf("Place(%q) = %d, want %d — the placement function changed; existing sharded repositories would break", name, got, want)
		}
	}
}

func TestPlacementCoversAllShards(t *testing.T) {
	r, _ := NewRouter(4)
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[r.Place(fmt.Sprintf("t%d", i))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("100 names covered only %d of 4 shards", len(seen))
	}
}

func TestRouterRejectsBadCounts(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewRouter(n); err == nil {
			t.Fatalf("NewRouter(%d) accepted", n)
		}
	}
}

func TestManifestRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("missing manifest: err = %v, want ErrNoManifest", err)
	}
	if err := WriteManifest(dir, NewManifest(4)); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 4 || m.Layout != Layout {
		t.Fatalf("manifest round trip = %+v", m)
	}
	if err := m.Validate(0); err != nil {
		t.Fatalf("auto-detect validation failed: %v", err)
	}
	if err := m.Validate(4); err != nil {
		t.Fatalf("matching validation failed: %v", err)
	}
	if err := m.Validate(2); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("mismatch validation: err = %v, want ErrShardMismatch", err)
	}
}
