package repl

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

const (
	// ringBudgetBytes bounds the in-memory batch ring. The ring only fills
	// while at least one subscriber is connected; beyond the budget the
	// oldest batches fall off and laggards catch up from the WAL instead.
	ringBudgetBytes = 32 << 20
	// pingInterval paces keepalive frames to caught-up subscribers.
	pingInterval = 3 * time.Second
	// snapChunkPages sizes the page frames of a snapshot catch-up.
	snapChunkPages = 256
	// streamWriteTimeout bounds each write on a subscriber stream. A
	// follower whose connection hangs (stops reading but stays
	// established) trips it on the next frame or ping, so the stream ends,
	// the subscriber unregisters, and its WAL retain floor is released
	// instead of pinning the log forever.
	streamWriteTimeout = 30 * time.Second
)

// Publisher streams one shard store's durable commits to replication
// subscribers. It hooks the group committer's post-fsync point, keeps a
// bounded ring of recent batches for live shipping, holds the store's WAL
// retain floor at the oldest epoch a connected subscriber still needs,
// and serves cold subscribers a full page-file snapshot pinned at one
// epoch. A publisher with no subscribers costs one atomic load per
// commit and retains nothing.
type Publisher struct {
	store *storage.Store

	mu        sync.Mutex
	ring      []storage.ReplBatch // contiguous epochs, oldest first
	ringBytes int
	subs      map[*subscriber]struct{}
}

// subscriber is one connected stream's cursor. next (the first epoch the
// stream has not shipped) is guarded by the publisher mutex so the floor
// computation reads a consistent set.
type subscriber struct {
	next uint64
	ch   chan struct{} // cap 1; poked when new batches enter the ring
}

// NewPublisher hooks the store's commit stream. Exactly one publisher
// may own a store's commit hook.
func NewPublisher(store *storage.Store) *Publisher {
	p := &Publisher{store: store, subs: make(map[*subscriber]struct{})}
	store.SetCommitHook(p.onCommit)
	return p
}

// Close unhooks the publisher from the store. Active streams end when
// their contexts do.
func (p *Publisher) Close() { p.store.SetCommitHook(nil) }

// Store returns the shard store this publisher ships.
func (p *Publisher) Store() *storage.Store { return p.store }

// Subscribers reports the number of connected streams.
func (p *Publisher) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// onCommit is the storage commit hook: it runs on the group-commit
// leader's goroutine once per durable commit, in epoch order.
func (p *Publisher) onCommit(b storage.ReplBatch) {
	p.mu.Lock()
	if len(p.subs) == 0 {
		p.ring, p.ringBytes = nil, 0
		p.mu.Unlock()
		return
	}
	p.ring = append(p.ring, b)
	p.ringBytes += len(b.Pages) * storage.PageSize
	// Keep at least the newest batch even when it alone busts the budget,
	// so a single giant commit can still ship from the ring.
	for p.ringBytes > ringBudgetBytes && len(p.ring) > 1 {
		p.ringBytes -= len(p.ring[0].Pages) * storage.PageSize
		p.ring = p.ring[1:]
	}
	for sub := range p.subs {
		select {
		case sub.ch <- struct{}{}:
		default:
		}
	}
	p.mu.Unlock()
}

// register adds a subscriber cursor and immediately pins the WAL retain
// floor at it, before any catch-up source is consulted — so a truncation
// can never race away batches the new subscriber was about to read.
func (p *Publisher) register(from uint64) *subscriber {
	sub := &subscriber{next: from, ch: make(chan struct{}, 1)}
	p.mu.Lock()
	p.subs[sub] = struct{}{}
	p.updateFloorLocked()
	p.mu.Unlock()
	return sub
}

func (p *Publisher) unregister(sub *subscriber) {
	p.mu.Lock()
	delete(p.subs, sub)
	if len(p.subs) == 0 {
		p.ring, p.ringBytes = nil, 0
	}
	p.updateFloorLocked()
	p.mu.Unlock()
}

// advance moves a subscriber's cursor past a shipped epoch and re-derives
// the retain floor.
func (p *Publisher) advance(sub *subscriber, next uint64) {
	p.mu.Lock()
	sub.next = next
	p.updateFloorLocked()
	p.mu.Unlock()
}

// updateFloorLocked sets the store's WAL retain floor to the oldest epoch
// any connected subscriber still needs (zero — no floor — when none are
// connected). Callers hold p.mu.
func (p *Publisher) updateFloorLocked() {
	var floor uint64
	for s := range p.subs {
		if floor == 0 || s.next < floor {
			floor = s.next
		}
	}
	p.store.SetWALRetainFloor(floor)
}

// ringFrom returns the ring batches from epoch next on. ok is false when
// the ring cannot serve the cursor (empty, or next has fallen off the
// front); ok with an empty slice means the cursor is past the ring's end
// (caught up with everything shipped so far).
func (p *Publisher) ringFrom(next uint64) ([]storage.ReplBatch, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ring) == 0 {
		return nil, false
	}
	first, last := p.ring[0].Epoch, p.ring[len(p.ring)-1].Epoch
	if next < first {
		return nil, false
	}
	if next > last {
		return nil, true
	}
	i := 0
	for i < len(p.ring) && p.ring[i].Epoch < next {
		i++
	}
	return append([]storage.ReplBatch(nil), p.ring[i:]...), true
}

// PublisherStatus is one publisher's /v1/repl/status entry.
type PublisherStatus struct {
	Epoch       uint64 `json:"epoch"`
	Subscribers int    `json:"subscribers"`
	WALFirst    uint64 `json:"wal_first_epoch"`
	WALLast     uint64 `json:"wal_last_epoch"`
}

// Status reports the publisher's shipping state.
func (p *Publisher) Status() PublisherStatus {
	first, last := p.store.WALEpochRange()
	return PublisherStatus{
		Epoch:       p.store.PublishedEpoch(),
		Subscribers: p.Subscribers(),
		WALFirst:    first,
		WALLast:     last,
	}
}

// ServeStream runs one subscriber stream until ctx ends or the transport
// fails: catch the subscriber up from epoch from (ring, WAL or full
// snapshot, whichever is cheapest and sufficient), then ship each new
// commit batch as it lands, with pings while idle. w must support
// http.Flusher for timely delivery (plain writers still work, at the
// mercy of downstream buffering).
func (p *Publisher) ServeStream(ctx context.Context, w http.ResponseWriter, from uint64) error {
	if from == 0 {
		from = 1
	}
	sub := p.register(from)
	defer p.unregister(sub)

	fw := newFrameWriter(&deadlineWriter{w: w, rc: http.NewResponseController(w)})
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	if err := fw.writeFrame(Frame{Kind: KindHello, Epoch: p.store.PublishedEpoch()}, nil); err != nil {
		return err
	}
	flush()

	if err := p.catchUp(ctx, fw, sub, flush); err != nil {
		return err
	}
	// The first ping is the caught-up signal: the follower marks itself
	// synced when its applied epoch reaches a ping's epoch.
	if err := fw.writeFrame(Frame{Kind: KindPing, Epoch: p.store.PublishedEpoch()}, nil); err != nil {
		return err
	}
	flush()

	ticker := time.NewTicker(pingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-sub.ch:
			if err := p.catchUp(ctx, fw, sub, flush); err != nil {
				return err
			}
		case <-ticker.C:
			if err := fw.writeFrame(Frame{Kind: KindPing, Epoch: p.store.PublishedEpoch()}, nil); err != nil {
				return err
			}
			flush()
		}
	}
}

// deadlineWriter arms a fresh write deadline before every write so a hung
// subscriber connection fails the stream within streamWriteTimeout (the
// periodic pings guarantee regular writes even when idle). Transports
// without deadline support (SetWriteDeadline returns ErrNotSupported,
// e.g. some test ResponseWriters) degrade to plain writes.
type deadlineWriter struct {
	w  io.Writer
	rc *http.ResponseController
}

func (dw *deadlineWriter) Write(p []byte) (int, error) {
	_ = dw.rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	return dw.w.Write(p)
}

// catchUp ships batches until the subscriber's cursor passes the store's
// published epoch, choosing per round between the ring, a WAL scan and a
// full snapshot.
func (p *Publisher) catchUp(ctx context.Context, fw *frameWriter, sub *subscriber, flush func()) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		target := p.store.PublishedEpoch()
		if sub.next > target {
			return nil
		}
		if batches, ok := p.ringFrom(sub.next); ok {
			for _, b := range batches {
				if err := p.shipBatch(fw, sub, flush, b.Epoch, b.Horizon, b.Pages); err != nil {
					return err
				}
			}
			continue
		}
		if shipped, err := p.shipFromWAL(ctx, fw, sub, flush); err != nil {
			return err
		} else if shipped {
			continue
		}
		if err := p.sendSnapshot(ctx, fw, sub, flush); err != nil {
			return err
		}
	}
}

// shipFromWAL replays the primary's own WAL to the subscriber when the
// log still holds the subscriber's next epoch. Returns whether anything
// shipped; false falls through to a full snapshot.
func (p *Publisher) shipFromWAL(ctx context.Context, fw *frameWriter, sub *subscriber, flush func()) (bool, error) {
	first, last := p.store.WALEpochRange()
	if first == 0 || sub.next < first || sub.next > last {
		return false, nil
	}
	shipped := false
	// The retire horizon at scan time over-approximates the horizon each
	// scanned batch carried: a larger horizon only makes the follower
	// more conservative about applying over open snapshots.
	hz := p.store.ReclaimHorizon()
	err := p.store.ScanWALBatches(func(pages []storage.DirtyPage) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ep, _, ok := storage.BatchMeta(pages)
		if !ok || ep < sub.next {
			return nil
		}
		shipped = true
		return p.shipBatch(fw, sub, flush, ep, hz, pages)
	})
	if err != nil {
		return shipped, err
	}
	return shipped, nil
}

// shipBatch writes one commit batch frame and advances the cursor.
func (p *Publisher) shipBatch(fw *frameWriter, sub *subscriber, flush func(), epoch, horizon uint64, pages []storage.DirtyPage) error {
	if err := fw.writeFrame(Frame{Kind: KindBatch, Epoch: epoch, Horizon: horizon}, pages); err != nil {
		return err
	}
	flush()
	p.advance(sub, epoch+1)
	obs.Engine.Add(obs.CtrReplBatchesShipped, 1)
	obs.Engine.Add(obs.CtrReplBytesShipped, int64(len(pages))*(storage.PageSize+8))
	return nil
}

// sendSnapshot ships the whole page file pinned at one committed epoch:
// hello{snapshot}, the pages from 1 on in chunks, then snapend with the
// epoch and roots the pages realize. The snapshot pin keeps every page
// reachable at that epoch immutable while streaming; pages unreachable at
// the pinned epoch may carry newer bytes, which is harmless — the batches
// from the pinned epoch on rewrite them on the follower.
func (p *Publisher) sendSnapshot(ctx context.Context, fw *frameWriter, sub *subscriber, flush func()) error {
	sn := p.store.Snapshot()
	defer sn.Close()
	epoch := sn.Epoch()
	count := p.store.PageCount()
	var roots [storage.NumRoots]storage.PageID
	for i := range roots {
		roots[i] = sn.Root(i)
	}

	if err := fw.writeFrame(Frame{Kind: KindHello, Snapshot: true, Epoch: epoch, PageTotal: uint64(count) - 1}, nil); err != nil {
		return err
	}
	flush()

	chunk := make([]storage.DirtyPage, 0, snapChunkPages)
	slab := make([]byte, snapChunkPages*storage.PageSize)
	ship := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if err := fw.writeFrame(Frame{Kind: KindPages}, chunk); err != nil {
			return err
		}
		flush()
		obs.Engine.Add(obs.CtrReplSnapshotPages, int64(len(chunk)))
		obs.Engine.Add(obs.CtrReplBytesShipped, int64(len(chunk))*(storage.PageSize+8))
		chunk = chunk[:0]
		return nil
	}
	for id := storage.PageID(1); id < count; id++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		dst := slab[len(chunk)*storage.PageSize : (len(chunk)+1)*storage.PageSize : (len(chunk)+1)*storage.PageSize]
		if err := p.store.ReadPageInto(id, dst); err != nil {
			return err
		}
		chunk = append(chunk, storage.DirtyPage{ID: id, Data: dst})
		if len(chunk) == snapChunkPages {
			if err := ship(); err != nil {
				return err
			}
		}
	}
	if err := ship(); err != nil {
		return err
	}
	if err := fw.writeFrame(Frame{Kind: KindSnapEnd, Epoch: epoch, Roots: rootsToWire(roots)}, nil); err != nil {
		return err
	}
	flush()
	p.advance(sub, epoch+1)
	return nil
}
