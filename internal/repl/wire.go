// Package repl is Crimson's WAL-shipping replication subsystem: a
// per-shard Publisher on the primary streams every durable commit batch
// (the exact page images the group committer fsynced) to subscribed
// followers, and a Follower applies them through the storage engine's
// ordinary commit machinery so replicas are byte-compatible with the
// primary and crash-recover with the same WAL replay.
//
// The stream is one long chunked HTTP response. Frames are a JSON header
// line (newline-terminated) followed by an optional binary page payload:
// N entries of an 8-byte little-endian page id and the PageSize-byte page
// image. Five frame kinds flow primary→follower:
//
//	hello   — stream opening; snapshot=true announces a full-snapshot
//	          catch-up of page_total pages pinned at epoch
//	pages   — one chunk of snapshot pages (payload only; no epoch)
//	snapend — snapshot complete: the epoch and root set the pages realize
//	batch   — one durable commit batch: epoch, primary reclaim horizon,
//	          and the batch's page images (page 0, the stamped meta page,
//	          always rides along)
//	ping    — keepalive carrying the primary's current epoch, sent when
//	          the subscriber is caught up; followers derive lag and the
//	          synced signal from it
//
// Catch-up picks the cheapest source that can reach the subscriber's
// next epoch: the publisher's in-memory ring of recent batches, else a
// scan of the primary's WAL (whose truncation the subscriber's retain
// floor holds back), else a full page-file snapshot.
package repl

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/storage"
)

// Frame kinds (the Kind field of a frame header).
const (
	KindHello   = "hello"
	KindPages   = "pages"
	KindSnapEnd = "snapend"
	KindBatch   = "batch"
	KindPing    = "ping"
)

// maxFramePages bounds a single frame's payload (4 GiB of pages) against
// corrupt or hostile headers. Real commit batches are far smaller;
// snapshots ship in snapChunkPages-sized frames.
const maxFramePages = 1 << 20

// Frame is one stream frame's JSON header. Which fields are meaningful
// depends on Kind; N is the number of page entries in the binary payload
// that follows the header line.
type Frame struct {
	Kind      string   `json:"kind"`
	Epoch     uint64   `json:"epoch,omitempty"`
	Horizon   uint64   `json:"horizon,omitempty"`
	Snapshot  bool     `json:"snapshot,omitempty"`
	PageTotal uint64   `json:"page_total,omitempty"`
	N         int      `json:"n,omitempty"`
	Roots     []uint64 `json:"roots,omitempty"`
}

// rootsToWire flattens a root-slot array for the JSON header.
func rootsToWire(roots [storage.NumRoots]storage.PageID) []uint64 {
	out := make([]uint64, storage.NumRoots)
	for i, r := range roots {
		out[i] = uint64(r)
	}
	return out
}

// rootsFromWire rebuilds a root-slot array from the JSON header form.
func rootsFromWire(ws []uint64) [storage.NumRoots]storage.PageID {
	var roots [storage.NumRoots]storage.PageID
	for i := 0; i < len(ws) && i < storage.NumRoots; i++ {
		roots[i] = storage.PageID(ws[i])
	}
	return roots
}

// frameWriter encodes frames onto one stream. Not safe for concurrent
// use; each subscriber stream has exactly one writing goroutine.
type frameWriter struct {
	bw *bufio.Writer
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

// writeFrame emits one frame: the JSON header line, then the page
// payload. f.N is forced to len(pages) so headers can't lie about their
// payload. The underlying writer sees the whole frame (bufio flush), but
// HTTP-level flushing is the caller's business.
func (fw *frameWriter) writeFrame(f Frame, pages []storage.DirtyPage) error {
	f.N = len(pages)
	hdr, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if _, err := fw.bw.Write(hdr); err != nil {
		return err
	}
	if err := fw.bw.WriteByte('\n'); err != nil {
		return err
	}
	var idb [8]byte
	for _, p := range pages {
		if len(p.Data) != storage.PageSize {
			return fmt.Errorf("repl: page %d image is %d bytes, want %d", p.ID, len(p.Data), storage.PageSize)
		}
		binary.LittleEndian.PutUint64(idb[:], uint64(p.ID))
		if _, err := fw.bw.Write(idb[:]); err != nil {
			return err
		}
		if _, err := fw.bw.Write(p.Data); err != nil {
			return err
		}
	}
	return fw.bw.Flush()
}

// frameReader decodes frames from one stream.
type frameReader struct {
	br *bufio.Reader
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// readFrame reads the next frame header and its page payload. The
// returned page images are private copies (one slab per frame).
func (fr *frameReader) readFrame() (Frame, []storage.DirtyPage, error) {
	line, err := fr.br.ReadBytes('\n')
	if err != nil {
		return Frame{}, nil, err
	}
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return Frame{}, nil, fmt.Errorf("repl: bad frame header: %w", err)
	}
	if f.N < 0 || f.N > maxFramePages {
		return Frame{}, nil, fmt.Errorf("repl: frame page count %d out of range", f.N)
	}
	if f.N == 0 {
		return f, nil, nil
	}
	pages := make([]storage.DirtyPage, f.N)
	slab := make([]byte, f.N*storage.PageSize)
	var idb [8]byte
	for i := 0; i < f.N; i++ {
		if _, err := io.ReadFull(fr.br, idb[:]); err != nil {
			return Frame{}, nil, fmt.Errorf("repl: truncated frame payload: %w", err)
		}
		dst := slab[i*storage.PageSize : (i+1)*storage.PageSize : (i+1)*storage.PageSize]
		if _, err := io.ReadFull(fr.br, dst); err != nil {
			return Frame{}, nil, fmt.Errorf("repl: truncated page image: %w", err)
		}
		pages[i] = storage.DirtyPage{ID: storage.PageID(binary.LittleEndian.Uint64(idb[:])), Data: dst}
	}
	return f, pages, nil
}
