package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/storage"
)

// TestWireRoundTrip pushes every frame kind through one stream and reads
// it back: headers, roots, and page payloads (ids and images) must
// survive byte-exactly.
func TestWireRoundTrip(t *testing.T) {
	var roots [storage.NumRoots]storage.PageID
	roots[0], roots[7] = 42, 99
	mkPage := func(id storage.PageID, fill byte) storage.DirtyPage {
		d := make([]byte, storage.PageSize)
		for i := range d {
			d[i] = fill
		}
		return storage.DirtyPage{ID: id, Data: d}
	}
	frames := []struct {
		f     Frame
		pages []storage.DirtyPage
	}{
		{Frame{Kind: KindHello, Epoch: 7, Snapshot: true, PageTotal: 123}, nil},
		{Frame{Kind: KindPages}, []storage.DirtyPage{mkPage(1, 0xAA), mkPage(9, 0x55)}},
		{Frame{Kind: KindSnapEnd, Epoch: 7, Roots: rootsToWire(roots)}, nil},
		{Frame{Kind: KindBatch, Epoch: 8, Horizon: 3}, []storage.DirtyPage{mkPage(0, 0x01)}},
		{Frame{Kind: KindPing, Epoch: 8}, nil},
	}

	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	for _, fr := range frames {
		if err := fw.writeFrame(fr.f, fr.pages); err != nil {
			t.Fatal(err)
		}
	}
	rd := newFrameReader(&buf)
	for i, want := range frames {
		got, pages, err := rd.readFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.f.Kind || got.Epoch != want.f.Epoch || got.Horizon != want.f.Horizon ||
			got.Snapshot != want.f.Snapshot || got.PageTotal != want.f.PageTotal {
			t.Fatalf("frame %d header = %+v, want %+v", i, got, want.f)
		}
		if want.f.Roots != nil && rootsFromWire(got.Roots) != roots {
			t.Fatalf("frame %d roots = %v, want %v", i, got.Roots, roots)
		}
		if len(pages) != len(want.pages) {
			t.Fatalf("frame %d carried %d pages, want %d", i, len(pages), len(want.pages))
		}
		for j, p := range pages {
			if p.ID != want.pages[j].ID || !bytes.Equal(p.Data, want.pages[j].Data) {
				t.Fatalf("frame %d page %d corrupted in transit", i, j)
			}
		}
	}
}

// primaryFixture is an in-package stand-in for the crimsond endpoints a
// follower speaks to: a file-backed store, its publisher, and an HTTP
// server exposing /v1/repl/status and /v1/repl/stream.
type primaryFixture struct {
	store *storage.Store
	pub   *Publisher
	srv   *httptest.Server
	tree  *storage.BTree
}

func newPrimaryFixture(t *testing.T) *primaryFixture {
	t.Helper()
	dir := t.TempDir()
	// The follower probes shard layout from the status response only; the
	// primary's own dir layout is irrelevant here, a flat store suffices.
	st, err := storage.Open(filepath.Join(dir, "primary.db"))
	if err != nil {
		t.Fatal(err)
	}
	st.SetCheckpointPolicy(1<<40, time.Hour) // tests control truncation explicitly
	pub := NewPublisher(st)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/status", func(w http.ResponseWriter, r *http.Request) {
		resp := StatusResponse{Role: "primary", Shards: []ShardStatus{{Shard: 0, Epoch: st.PublishedEpoch()}}}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/v1/repl/stream", func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from_epoch"), 10, 64)
		pub.ServeStream(r.Context(), w, from)
	})
	srv := httptest.NewServer(mux)
	tree, err := storage.NewBTree(st)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, tree.Root())
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	f := &primaryFixture{store: st, pub: pub, srv: srv, tree: tree}
	t.Cleanup(func() {
		srv.Close()
		pub.Close()
		st.Close()
	})
	return f
}

// commit writes n keys with the given prefix, one commit per key, and
// returns the primary's resulting epoch.
func (f *primaryFixture) commit(t *testing.T, prefix string, n int) uint64 {
	t.Helper()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s-%03d", prefix, i)
		if err := f.tree.Put([]byte(k), []byte("v:"+k)); err != nil {
			t.Fatal(err)
		}
		f.store.SetRoot(0, f.tree.Root())
		if err := f.store.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return f.store.PublishedEpoch()
}

// waitEpoch blocks until the store's published epoch reaches want.
func waitEpoch(t *testing.T, st *storage.Store, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for st.PublishedEpoch() < want {
		if time.Now().After(deadline) {
			t.Fatalf("store stuck at epoch %d, want %d", st.PublishedEpoch(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// verifyKeys asserts every key the primary committed is readable on the
// replica store with the right value.
func verifyKeys(t *testing.T, st *storage.Store, prefix string, n int) {
	t.Helper()
	tree := storage.OpenBTree(st, st.Root(0))
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s-%03d", prefix, i)
		got, ok, err := tree.Get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("replica missing key %s (ok=%v err=%v)", k, ok, err)
		}
		if want := "v:" + k; string(got) != want {
			t.Fatalf("replica key %s = %q, want %q", k, got, want)
		}
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("replica tree integrity: %v", err)
	}
}

func startFollower(t *testing.T, ctx context.Context, dir, url string) *Follower {
	t.Helper()
	fl, err := OpenFollower(dir, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl.Start(ctx)
	if err := fl.WaitSynced(ctx); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	return fl
}

// TestFollowerTailsWAL covers the WAL catch-up path (the primary's log
// still holds every batch) and live streaming: a follower connecting from
// epoch zero must reach the primary's epoch with identical content, then
// track subsequent commits.
func TestFollowerTailsWAL(t *testing.T) {
	p := newPrimaryFixture(t)
	epoch := p.commit(t, "wal", 5)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fl := startFollower(t, ctx, t.TempDir(), p.srv.URL)
	defer fl.Stop()

	st := fl.Stores()[0]
	waitEpoch(t, st, epoch)
	verifyKeys(t, st, "wal", 5)

	// Live tail: new commits must stream through without reconnects.
	epoch = p.commit(t, "live", 5)
	waitEpoch(t, st, epoch)
	verifyKeys(t, st, "live", 5)

	sts := fl.Status()
	if sts.Role != "follower" || len(sts.Shards) != 1 {
		t.Fatalf("follower status = %+v", sts)
	}
	if sh := sts.Shards[0]; !sh.Connected || !sh.Synced || sh.Epoch != epoch {
		t.Fatalf("shard status = %+v, want connected+synced at epoch %d", sh, epoch)
	}
}

// TestFollowerSnapshotCatchUp truncates the primary's WAL before the
// follower ever connects, forcing the full page-file snapshot path, and
// then checks the stream degrades gracefully into ordinary batch tailing.
func TestFollowerSnapshotCatchUp(t *testing.T) {
	p := newPrimaryFixture(t)
	epoch := p.commit(t, "snap", 8)
	if err := p.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if p.store.WALSize() != 0 {
		t.Fatal("setup: WAL not truncated, the test would not exercise the snapshot path")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fl := startFollower(t, ctx, t.TempDir(), p.srv.URL)
	defer fl.Stop()

	st := fl.Stores()[0]
	waitEpoch(t, st, epoch)
	verifyKeys(t, st, "snap", 8)

	epoch = p.commit(t, "after", 3)
	waitEpoch(t, st, epoch)
	verifyKeys(t, st, "after", 3)
}

// TestFollowerResumesFromLocalWAL stops a synced follower, lets the
// primary advance, and reopens the same directory: the follower must
// recover its applied epoch from its own WAL and resume from there (ring
// or WAL catch-up), not re-snapshot from scratch.
func TestFollowerResumesFromLocalWAL(t *testing.T) {
	p := newPrimaryFixture(t)
	epoch := p.commit(t, "one", 4)

	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fl := startFollower(t, ctx, dir, p.srv.URL)
	waitEpoch(t, fl.Stores()[0], epoch)
	resumeFrom := fl.Stores()[0].PublishedEpoch()
	fl.Stop()
	for _, st := range fl.Stores() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	epoch = p.commit(t, "two", 4)

	fl2 := startFollower(t, ctx, dir, p.srv.URL)
	defer fl2.Stop()
	st := fl2.Stores()[0]
	if got := st.PublishedEpoch(); got < resumeFrom {
		t.Fatalf("reopened follower recovered to epoch %d, want >= %d", got, resumeFrom)
	}
	waitEpoch(t, st, epoch)
	verifyKeys(t, st, "one", 4)
	verifyKeys(t, st, "two", 4)
}

// TestFollowerPromote syncs a follower, stops it, promotes it, and writes
// to it: the promoted store must accept local commits on top of the
// replicated history while keeping everything it applied.
func TestFollowerPromote(t *testing.T) {
	p := newPrimaryFixture(t)
	epoch := p.commit(t, "pre", 5)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fl := startFollower(t, ctx, t.TempDir(), p.srv.URL)
	st := fl.Stores()[0]
	waitEpoch(t, st, epoch)

	fl.Promote()
	if !fl.Promoted() {
		t.Fatal("Promoted() false after Promote")
	}
	if st.IsReplica() {
		t.Fatal("store still flags replica after promote")
	}

	tree := storage.OpenBTree(st, st.Root(0))
	if err := tree.Put([]byte("post-promote"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, tree.Root())
	if err := st.Commit(); err != nil {
		t.Fatalf("commit on promoted store: %v", err)
	}
	verifyKeys(t, st, "pre", 5)
	got, ok, err := storage.OpenBTree(st, st.Root(0)).Get([]byte("post-promote"))
	if err != nil || !ok || string(got) != "ok" {
		t.Fatalf("post-promote key: %q ok=%v err=%v", got, ok, err)
	}
	if st.PublishedEpoch() <= epoch {
		t.Fatalf("promoted commit did not advance the epoch past %d", epoch)
	}
}

// TestFollowerInvalidatesPinnedSnapshots pins the torn-read guard: when a
// batch whose reclaim horizon covers an open local snapshot must be
// applied (the grace period expired), the snapshot is invalidated — its
// reads fail with storage.ErrSnapshotInvalidated — and the apply loop
// still makes progress, rather than silently rewriting pages under the
// pinned reader.
func TestFollowerInvalidatesPinnedSnapshots(t *testing.T) {
	p := newPrimaryFixture(t)
	epoch := p.commit(t, "inv", 4)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fl := startFollower(t, ctx, t.TempDir(), p.srv.URL)
	defer fl.Stop()
	st := fl.Stores()[0]
	waitEpoch(t, st, epoch)

	// A long-running read on the replica: pin a snapshot and keep it open.
	sn := st.Snapshot()
	defer sn.Close()
	pinned := storage.OpenBTreeAt(st, sn.Root(0), sn.Epoch())
	if _, ok, err := pinned.Get([]byte("inv-000")); err != nil || !ok {
		t.Fatalf("pinned read before conflict: ok=%v err=%v", ok, err)
	}

	// Churn the primary until its reclaim horizon covers the snapshot's
	// epoch: pages the snapshot may still reference have been reused, so
	// the shipped batches now conflict with the open pin.
	deadline := time.Now().Add(10 * time.Second)
	round := 0
	for p.store.ReclaimHorizon() < sn.Epoch() {
		if time.Now().After(deadline) {
			t.Fatalf("primary reclaim horizon stuck at %d, want >= %d", p.store.ReclaimHorizon(), sn.Epoch())
		}
		p.commit(t, fmt.Sprintf("churn%d", round), 2)
		round++
	}
	target := p.commit(t, "final", 1)

	// The apply loop must get past the conflict (after the grace period)
	// instead of stalling behind the open snapshot...
	waitEpoch(t, st, target)
	verifyKeys(t, st, "final", 1)

	// ...and the pinned reader must now fail with the retryable error, not
	// observe rewritten pages.
	if _, _, err := pinned.Get([]byte("inv-001")); !errors.Is(err, storage.ErrSnapshotInvalidated) {
		t.Fatalf("pinned read after conflicting apply: err=%v, want ErrSnapshotInvalidated", err)
	}

	// A fresh snapshot at the applied epoch reads normally.
	sn2 := st.Snapshot()
	defer sn2.Close()
	fresh := storage.OpenBTreeAt(st, sn2.Root(0), sn2.Epoch())
	if _, ok, err := fresh.Get([]byte("inv-000")); err != nil || !ok {
		t.Fatalf("fresh snapshot read after conflict: ok=%v err=%v", ok, err)
	}
}

// TestReplicaRejectsLocalCommit pins the fork-prevention rule: a replica
// store must refuse local commits until promoted.
func TestReplicaRejectsLocalCommit(t *testing.T) {
	p := newPrimaryFixture(t)
	epoch := p.commit(t, "guard", 2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fl := startFollower(t, ctx, t.TempDir(), p.srv.URL)
	defer fl.Stop()
	st := fl.Stores()[0]
	waitEpoch(t, st, epoch)

	tree := storage.OpenBTree(st, st.Root(0))
	if err := tree.Put([]byte("illegal"), []byte("write")); err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, tree.Root())
	if err := st.Commit(); err == nil {
		t.Fatal("local commit on a replica store succeeded, want ErrReplica")
	}
}
