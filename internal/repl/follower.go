package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/storage"
)

const (
	// horizonGrace bounds how long an apply waits for local snapshots
	// older than the shipped reclaim horizon to close. When the grace
	// expires, those snapshots are invalidated (their in-flight reads fail
	// with a retryable error) before the apply proceeds — never applied
	// over, which would let pinned readers silently observe rewritten
	// pages. Counted in repl_apply_conflicts / repl_snapshots_invalidated.
	horizonGrace = 250 * time.Millisecond
	// reconnect backoff bounds.
	backoffMin = 100 * time.Millisecond
	backoffMax = 3 * time.Second
)

// StatusResponse is the /v1/repl/status body, served by both roles.
// Degraded is set on a follower whose promote attempt failed after the
// stores were already flipped writable: apply loops are stopped, nothing
// is replicating, and retrying POST /v1/repl/promote is the remediation.
type StatusResponse struct {
	Role     string        `json:"role"` // "primary" or "follower"
	Degraded bool          `json:"degraded,omitempty"`
	Shards   []ShardStatus `json:"shards"`
}

// ShardStatus is one shard's replication state. On a primary, Epoch is
// the published epoch and Subscribers counts connected streams; on a
// follower, Epoch is the last applied epoch and the remaining fields
// describe the stream from the primary.
type ShardStatus struct {
	Shard         int    `json:"shard"`
	Epoch         uint64 `json:"epoch"`
	Subscribers   int    `json:"subscribers,omitempty"`
	PrimaryEpoch  uint64 `json:"primary_epoch,omitempty"`
	LagEpochs     uint64 `json:"lag_epochs,omitempty"`
	Connected     bool   `json:"connected,omitempty"`
	Synced        bool   `json:"synced,omitempty"`
	LastContactMS int64  `json:"last_contact_ms,omitempty"`
}

// Follower replicates a primary's sharded store into a local directory.
// It opens every shard with storage.OpenReplica, streams batches from the
// primary's /v1/repl/stream endpoint (reconnecting with backoff from the
// last applied epoch) and applies them through ApplyReplicated, so each
// applied epoch is WAL-durable locally before the cursor moves past it.
//
// The follower owns the apply loops but not the stores' lifetimes: the
// serving layer that assembles repositories over Stores() is responsible
// for closing them.
type Follower struct {
	primary string
	hc      *http.Client
	dir     string
	stores  []*storage.Store
	shards  []*followerShard

	mu       sync.Mutex
	cancel   context.CancelFunc
	started  bool
	promoted bool
	wg       sync.WaitGroup
}

type followerShard struct {
	primaryEpoch atomic.Uint64
	connected    atomic.Bool
	synced       atomic.Bool
	lastContact  atomic.Int64 // unix nanos of the last frame received
}

// OpenFollower prepares dir as a replica of the primary at baseURL: it
// probes the primary's /v1/repl/status for the shard count, lays down (or
// validates) the local shard manifest, and opens every shard store in
// replica mode, resuming from whatever epoch each local WAL recovers to.
// Call Start to begin streaming. hc may be nil for a default client.
func OpenFollower(dir, baseURL string, hc *http.Client) (*Follower, error) {
	if hc == nil {
		// No client-level timeout: stream requests are unbounded by
		// design and carry per-request contexts instead.
		hc = &http.Client{}
	}
	primary := strings.TrimRight(baseURL, "/")

	st, err := fetchStatus(hc, primary)
	if err != nil {
		return nil, fmt.Errorf("repl: probing primary: %w", err)
	}
	n := len(st.Shards)
	if n == 0 {
		return nil, fmt.Errorf("repl: primary %s reports no shards", primary)
	}

	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	man, err := shard.ReadManifest(dir)
	switch {
	case err == nil:
		if man.Shards != n {
			return nil, fmt.Errorf("repl: local manifest has %d shards, primary has %d", man.Shards, n)
		}
	case errors.Is(err, shard.ErrNoManifest):
		if err := shard.WriteManifest(dir, shard.NewManifest(n)); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	f := &Follower{primary: primary, hc: hc, dir: dir}
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(shard.Dir(dir, i), 0o777); err != nil {
			f.closeStores()
			return nil, err
		}
		s, err := storage.OpenReplica(shard.PageFile(dir, i))
		if err != nil {
			f.closeStores()
			return nil, fmt.Errorf("repl: opening replica shard %d: %w", i, err)
		}
		f.stores = append(f.stores, s)
		f.shards = append(f.shards, &followerShard{})
	}
	return f, nil
}

func fetchStatus(hc *http.Client, base string) (*StatusResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/repl/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (f *Follower) closeStores() {
	for _, s := range f.stores {
		s.Close()
	}
	f.stores = nil
}

// Stores returns the per-shard replica stores, in shard order.
func (f *Follower) Stores() []*storage.Store { return f.stores }

// Dir returns the local replica directory.
func (f *Follower) Dir() string { return f.dir }

// Primary returns the primary's base URL.
func (f *Follower) Primary() string { return f.primary }

// Start launches one streaming apply loop per shard. The loops stop when
// ctx ends or Stop/Promote is called.
func (f *Follower) Start(ctx context.Context) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.started = true
	ctx, f.cancel = context.WithCancel(ctx)
	for i := range f.stores {
		f.wg.Add(1)
		go func(i int) {
			defer f.wg.Done()
			f.run(ctx, i)
		}(i)
	}
}

// Stop halts the apply loops and waits for them to exit. The stores stay
// open (and stay replicas).
func (f *Follower) Stop() {
	f.mu.Lock()
	cancel := f.cancel
	f.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	f.wg.Wait()
}

// run is one shard's reconnect loop.
func (f *Follower) run(ctx context.Context, i int) {
	backoff := backoffMin
	for {
		started := time.Now()
		err := f.streamOnce(ctx, i)
		f.shards[i].connected.Store(false)
		if ctx.Err() != nil {
			return
		}
		_ = err // any stream error means reconnect from the applied epoch
		obs.Engine.Add(obs.CtrReplReconnects, 1)
		// A stream that held for a while earns a fresh backoff.
		if time.Since(started) > 5*time.Second {
			backoff = backoffMin
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// streamOnce opens one stream from the shard's next needed epoch and
// applies frames until the stream breaks or ctx ends.
func (f *Follower) streamOnce(ctx context.Context, i int) error {
	st := f.stores[i]
	sh := f.shards[i]
	from := st.PublishedEpoch() + 1
	url := fmt.Sprintf("%s/v1/repl/stream?shard=%d&from_epoch=%d", f.primary, i, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("repl: stream shard %d: %s: %s", i, resp.Status, strings.TrimSpace(string(body)))
	}
	sh.connected.Store(true)

	fr := newFrameReader(resp.Body)
	var snapPages []storage.DirtyPage
	inSnap := false
	for {
		frame, pages, err := fr.readFrame()
		if err != nil {
			return err
		}
		sh.lastContact.Store(time.Now().UnixNano())
		switch frame.Kind {
		case KindHello:
			sh.notePrimaryEpoch(frame.Epoch)
			if frame.Snapshot {
				inSnap = true
				snapPages = make([]storage.DirtyPage, 0, frame.PageTotal)
			}
		case KindPages:
			if !inSnap {
				return fmt.Errorf("repl: pages frame outside snapshot")
			}
			snapPages = append(snapPages, pages...)
		case KindSnapEnd:
			if !inSnap {
				return fmt.Errorf("repl: snapend frame outside snapshot")
			}
			inSnap = false
			metaPage := storage.EncodeReplicaMeta(frame.Epoch, rootsFromWire(frame.Roots))
			all := make([]storage.DirtyPage, 0, len(snapPages)+1)
			all = append(all, storage.DirtyPage{ID: 0, Data: metaPage})
			all = append(all, snapPages...)
			snapPages = nil
			// A snapshot replaces every page: wait for all local
			// snapshots older than its epoch.
			f.waitHorizon(st, frame.Epoch)
			if err := st.ApplyReplicated(frame.Epoch, all); err != nil {
				return err
			}
			obs.Engine.Add(obs.CtrReplBatchesApplied, 1)
			obs.Engine.Add(obs.CtrReplPagesApplied, int64(len(all)))
			sh.notePrimaryEpoch(frame.Epoch)
		case KindBatch:
			if frame.Epoch <= st.PublishedEpoch() {
				// Reconnect overlap: the batch is already applied.
				continue
			}
			if frame.Horizon > 0 {
				// Pages retired at epochs <= Horizon have been reused on
				// the primary; this batch may rewrite them.
				f.waitHorizon(st, frame.Horizon+1)
			}
			if err := st.ApplyReplicated(frame.Epoch, pages); err != nil {
				return err
			}
			obs.Engine.Add(obs.CtrReplBatchesApplied, 1)
			obs.Engine.Add(obs.CtrReplPagesApplied, int64(len(pages)))
			sh.notePrimaryEpoch(frame.Epoch)
		case KindPing:
			sh.notePrimaryEpoch(frame.Epoch)
			if st.PublishedEpoch() >= frame.Epoch {
				sh.synced.Store(true)
			}
		default:
			return fmt.Errorf("repl: unknown frame kind %q", frame.Kind)
		}
	}
}

func (sh *followerShard) notePrimaryEpoch(e uint64) {
	for {
		cur := sh.primaryEpoch.Load()
		if e <= cur || sh.primaryEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// waitHorizon blocks (up to horizonGrace) while any open local snapshot
// pins an epoch below limit. If the grace expires with such snapshots
// still open, they are invalidated — their subsequent reads fail with
// storage.ErrSnapshotInvalidated (a retryable error the serving layer
// maps to a failover status) — so the apply that follows can never be
// silently observed by a pinned reader as torn pages.
func (f *Follower) waitHorizon(st *storage.Store, limit uint64) {
	deadline := time.Now().Add(horizonGrace)
	for {
		oldest, ok := st.OldestSnapshotEpoch()
		if !ok || oldest >= limit {
			return
		}
		if time.Now().After(deadline) {
			obs.Engine.Add(obs.CtrReplApplyConflicts, 1)
			obs.Engine.Add(obs.CtrReplSnapshotsInvalidated, 1)
			// Must happen before ApplyReplicated touches the pool: readers
			// check the mark after each page read, so ordering the store
			// before any frame mutation closes the race (see
			// InvalidateSnapshotsBelow).
			st.InvalidateSnapshotsBelow(limit)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Synced reports whether every shard has caught up with the primary at
// least once since its stream connected.
func (f *Follower) Synced() bool {
	for _, sh := range f.shards {
		if !sh.synced.Load() {
			return false
		}
	}
	return true
}

// WaitSynced blocks until every shard is synced or ctx ends.
func (f *Follower) WaitSynced(ctx context.Context) error {
	for {
		if f.Synced() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Promote stops the apply loops and flips every shard store to a
// writable primary. The serving layer completes the promotion (catalog
// reload, leak sweep, accepting writes); replication of already-applied
// epochs is preserved — nothing the primary WAL-fsynced and shipped is
// lost.
func (f *Follower) Promote() {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return
	}
	f.promoted = true
	f.mu.Unlock()
	f.Stop()
	for _, s := range f.stores {
		s.Promote()
	}
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// Status reports per-shard replication state for /v1/repl/status and
// /v1/stats on a follower.
func (f *Follower) Status() StatusResponse {
	out := StatusResponse{Role: "follower"}
	if f.Promoted() {
		out.Role = "primary"
	}
	now := time.Now().UnixNano()
	for i, s := range f.stores {
		sh := f.shards[i]
		applied := s.PublishedEpoch()
		pe := sh.primaryEpoch.Load()
		var lag uint64
		if pe > applied {
			lag = pe - applied
		}
		ss := ShardStatus{
			Shard:        i,
			Epoch:        applied,
			PrimaryEpoch: pe,
			LagEpochs:    lag,
			Connected:    sh.connected.Load(),
			Synced:       sh.synced.Load(),
		}
		if lc := sh.lastContact.Load(); lc != 0 {
			ss.LastContactMS = (now - lc) / int64(time.Millisecond)
		}
		out.Shards = append(out.Shards, ss)
	}
	return out
}
