// Package species is Crimson's Species Repository (§2.1): species data —
// gene sequences and other phenotypic character data — stored separately
// from the tree structure, keyed by (tree, species, kind). The separation
// is the paper's design point: queries are structure-based, so structure
// and bulk species data must not share pages.
package species

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/relstore"
	"repro/internal/seqsim"
	"repro/internal/shard"
)

// ErrNoData is returned when a requested record does not exist.
var ErrNoData = errors.New("species: no such record")

// ErrBadKey is returned when a tree/species/kind key part is invalid
// (callers can distinguish caller mistakes from storage failures).
var ErrBadKey = errors.New("species: invalid key part")

const tableName = "species_data"

// Repo is the species data repository over a relational database. When the
// repository is sharded, species data co-locates with its tree: records
// are routed to the shard that owns the tree they belong to, so a tree and
// its sequences always live (and are deleted) together.
type Repo struct {
	tabs   []*relstore.Table // one species_data table per shard
	router *shard.Router
}

func initShard(db *relstore.DB) (*relstore.Table, error) {
	tab, err := db.Table(tableName)
	if errors.Is(err, relstore.ErrNoTable) {
		tab, err = db.CreateTable(relstore.Schema{
			Name: tableName,
			Columns: []relstore.Column{
				{Name: "key", Type: relstore.TString}, // tree/species/kind
				{Name: "tree", Type: relstore.TString},
				{Name: "species", Type: relstore.TString},
				{Name: "kind", Type: relstore.TString},
				{Name: "data", Type: relstore.TBytes},
			},
			Key: "key",
			Indexes: []relstore.Index{
				{Name: "by_species", Columns: []string{"tree", "species"}},
				{Name: "by_tree", Columns: []string{"tree"}},
			},
		})
	}
	return tab, err
}

// NewOnDB layers the repository over an existing database (shared with
// the tree repository).
func NewOnDB(db *relstore.DB) (*Repo, error) {
	return NewOnShards([]*relstore.DB{db}, shard.Single)
}

// NewOnShards layers the repository over one database per shard, using the
// same router as the tree repository so species data lands on its tree's
// shard.
func NewOnShards(dbs []*relstore.DB, router *shard.Router) (*Repo, error) {
	if router.N() != len(dbs) {
		return nil, fmt.Errorf("species: router covers %d shards, got %d databases", router.N(), len(dbs))
	}
	r := &Repo{tabs: make([]*relstore.Table, len(dbs)), router: router}
	for i, db := range dbs {
		tab, err := initShard(db)
		if err != nil {
			return nil, fmt.Errorf("species: initializing shard %d: %w", i, err)
		}
		r.tabs[i] = tab
	}
	return r, nil
}

// tabFor returns the shard table that owns records of the given tree.
func (r *Repo) tabFor(tree string) *relstore.Table {
	return r.tabs[r.router.Place(tree)]
}

func key(tree, sp, kind string) string { return tree + "/" + sp + "/" + kind }

func validPart(s string) error {
	if s == "" {
		return fmt.Errorf("%w: empty", ErrBadKey)
	}
	if strings.ContainsRune(s, '/') {
		return fmt.Errorf("%w: %q contains '/'", ErrBadKey, s)
	}
	return nil
}

// Put stores (replacing) one record of species data, e.g. kind
// "seq:smallsubunit" or "trait:eyecolor".
func (r *Repo) Put(tree, sp, kind string, data []byte) error {
	for _, part := range []string{tree, sp, kind} {
		if err := validPart(part); err != nil {
			return err
		}
	}
	return r.tabFor(tree).Put(relstore.Row{
		relstore.Str(key(tree, sp, kind)),
		relstore.Str(tree),
		relstore.Str(sp),
		relstore.Str(kind),
		relstore.Blob(data),
	})
}

// reader is the read surface Get and List need; both the live table
// (lock-per-operation) and a snapshot view (lock-free) satisfy it.
type reader interface {
	Get(key relstore.Value) (relstore.Row, bool, error)
	IndexScan(index string, vals []relstore.Value, fn func(relstore.Row) (bool, error)) error
}

func getRecord(tab reader, tree, sp, kind string) ([]byte, error) {
	row, ok, err := tab.Get(relstore.Str(key(tree, sp, kind)))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoData, key(tree, sp, kind))
	}
	return row[4].Bytes(), nil
}

func listRecords(tab reader, tree, sp string) ([]Record, error) {
	var out []Record
	err := tab.IndexScan("by_species", []relstore.Value{relstore.Str(tree), relstore.Str(sp)},
		func(row relstore.Row) (bool, error) {
			out = append(out, Record{
				Tree:    row[1].Text(),
				Species: row[2].Text(),
				Kind:    row[3].Text(),
				Data:    row[4].Bytes(),
			})
			return true, nil
		})
	return out, err
}

// Get fetches one record.
func (r *Repo) Get(tree, sp, kind string) ([]byte, error) {
	return getRecord(r.tabFor(tree), tree, sp, kind)
}

// Record is one stored species-data item.
type Record struct {
	Tree    string
	Species string
	Kind    string
	Data    []byte
}

// List returns all records for one species of one tree.
func (r *Repo) List(tree, sp string) ([]Record, error) {
	return listRecords(r.tabFor(tree), tree, sp)
}

// View is a read-only snapshot view of the species repository: Get and
// List run lock-free against the epoch the snapshot pinned, so they never
// wait behind a bulk load or delete. Records are routed to the snapshot of
// the shard that owns their tree. Tables are resolved lazily — a snapshot
// taken before the repository's first commit simply has no data.
type View struct {
	sns    []*relstore.Snap
	router *shard.Router
}

// ViewOn binds a species view to a relational snapshot (shared with the
// tree and query repositories).
func ViewOn(rs *relstore.Snap) *View {
	return &View{sns: []*relstore.Snap{rs}, router: shard.Single}
}

// ViewOnShards binds a species view to one relational snapshot per shard.
func ViewOnShards(sns []*relstore.Snap, router *shard.Router) *View {
	return &View{sns: sns, router: router}
}

func (v *View) readerFor(tree string) (reader, error) {
	tab, err := v.sns[v.router.Place(tree)].Table(tableName)
	if errors.Is(err, relstore.ErrNoTable) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return tab, nil
}

// Get fetches one record as of the snapshot.
func (v *View) Get(tree, sp, kind string) ([]byte, error) {
	tab, err := v.readerFor(tree)
	if err != nil {
		return nil, err
	}
	if tab == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoData, key(tree, sp, kind))
	}
	return getRecord(tab, tree, sp, kind)
}

// List returns all records for one species of one tree as of the snapshot.
func (v *View) List(tree, sp string) ([]Record, error) {
	tab, err := v.readerFor(tree)
	if err != nil || tab == nil {
		return nil, err
	}
	return listRecords(tab, tree, sp)
}

// Delete removes one record, reporting whether it existed.
func (r *Repo) Delete(tree, sp, kind string) (bool, error) {
	return r.tabFor(tree).Delete(relstore.Str(key(tree, sp, kind)))
}

// DeleteTree removes all species data of one tree.
func (r *Repo) DeleteTree(tree string) (int, error) {
	tab := r.tabFor(tree)
	var keys []string
	err := tab.IndexScan("by_tree", []relstore.Value{relstore.Str(tree)}, func(row relstore.Row) (bool, error) {
		keys = append(keys, row[0].Text())
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if _, err := tab.Delete(relstore.Str(k)); err != nil {
			return 0, err
		}
	}
	return len(keys), nil
}

// PutAlignment stores every sequence of an alignment under the given kind
// ("append species data to an existing phylogenetic tree" in the demo's
// loading options). Returns the number of sequences stored.
func (r *Repo) PutAlignment(tree, kind string, aln *seqsim.Alignment) (int, error) {
	for _, name := range aln.Names {
		if err := r.Put(tree, name, kind, aln.Seqs[name]); err != nil {
			return 0, err
		}
	}
	return len(aln.Names), nil
}

// Alignment reassembles an alignment for the given species names from
// records of the given kind.
func (r *Repo) Alignment(tree, kind string, names []string) (*seqsim.Alignment, error) {
	aln := &seqsim.Alignment{Seqs: make(map[string][]byte, len(names))}
	for _, name := range names {
		data, err := r.Get(tree, name, kind)
		if err != nil {
			return nil, err
		}
		aln.Names = append(aln.Names, name)
		aln.Seqs[name] = data
	}
	return aln, nil
}
