// Package species is Crimson's Species Repository (§2.1): species data —
// gene sequences and other phenotypic character data — stored separately
// from the tree structure, keyed by (tree, species, kind). The separation
// is the paper's design point: queries are structure-based, so structure
// and bulk species data must not share pages.
package species

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/relstore"
	"repro/internal/seqsim"
	"repro/internal/shard"
)

// ErrNoData is returned when a requested record does not exist.
var ErrNoData = errors.New("species: no such record")

// ErrBadKey is returned when a tree/species/kind key part is invalid
// (callers can distinguish caller mistakes from storage failures).
var ErrBadKey = errors.New("species: invalid key part")

const tableName = "species_data"

// Repo is the species data repository over a relational database. When the
// repository is sharded, species data co-locates with its tree: records
// are routed to the shard that owns the tree they belong to, so a tree and
// its sequences always live (and are deleted) together.
type Repo struct {
	dbs    []*relstore.DB
	tabs   []*relstore.Table // one species_data table per shard
	router *shard.Router
}

func initShard(db *relstore.DB) (*relstore.Table, error) {
	tab, err := db.Table(tableName)
	if errors.Is(err, relstore.ErrNoTable) {
		tab, err = db.CreateTable(relstore.Schema{
			Name: tableName,
			Columns: []relstore.Column{
				{Name: "key", Type: relstore.TString}, // tree/species/kind
				{Name: "tree", Type: relstore.TString},
				{Name: "species", Type: relstore.TString},
				{Name: "kind", Type: relstore.TString},
				{Name: "data", Type: relstore.TBytes},
			},
			Key: "key",
			Indexes: []relstore.Index{
				{Name: "by_species", Columns: []string{"tree", "species"}},
				{Name: "by_tree", Columns: []string{"tree"}},
			},
		})
	}
	return tab, err
}

// NewOnDB layers the repository over an existing database (shared with
// the tree repository).
func NewOnDB(db *relstore.DB) (*Repo, error) {
	return NewOnShards([]*relstore.DB{db}, shard.Single)
}

// NewOnShards layers the repository over one database per shard, using the
// same router as the tree repository so species data lands on its tree's
// shard.
func NewOnShards(dbs []*relstore.DB, router *shard.Router) (*Repo, error) {
	if router.N() != len(dbs) {
		return nil, fmt.Errorf("species: router covers %d shards, got %d databases", router.N(), len(dbs))
	}
	r := &Repo{dbs: dbs, tabs: make([]*relstore.Table, len(dbs)), router: router}
	if err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// NewOnShardsReplica layers the repository over replica databases without
// touching them: the live table handles stay unresolved (a replica can
// neither create the table nor accept writes), while snapshot Views — the
// only read path the follower server uses — resolve tables per snapshot
// as usual. After a promote, Reload resolves the live handles.
func NewOnShardsReplica(dbs []*relstore.DB, router *shard.Router) (*Repo, error) {
	if router.N() != len(dbs) {
		return nil, fmt.Errorf("species: router covers %d shards, got %d databases", router.N(), len(dbs))
	}
	return &Repo{dbs: dbs, tabs: make([]*relstore.Table, len(dbs)), router: router}, nil
}

// Reload (re-)resolves the live table handle of every shard, creating the
// table where missing. Called at construction and after a promote flips
// the underlying stores writable.
func (r *Repo) Reload() error {
	for i, db := range r.dbs {
		tab, err := initShard(db)
		if err != nil {
			return fmt.Errorf("species: initializing shard %d: %w", i, err)
		}
		r.tabs[i] = tab
	}
	return nil
}

// tabFor returns the shard table that owns records of the given tree.
func (r *Repo) tabFor(tree string) *relstore.Table {
	return r.tabs[r.router.Place(tree)]
}

// writeTabFor is tabFor for the write paths: on a replica the live handle
// is unresolved, and a clear error beats a nil dereference.
func (r *Repo) writeTabFor(tree string) (*relstore.Table, error) {
	tab := r.tabFor(tree)
	if tab == nil {
		return nil, fmt.Errorf("species: repository is a read-only replica (promote before writing)")
	}
	return tab, nil
}

// readerFor returns a read surface for the shard owning tree plus a
// release func. On a primary it is the live table (release is a no-op);
// on a replica — where live handles stay unresolved because applied
// batches move roots under them — it resolves the table through a fresh
// snapshot pinned at the last applied epoch. A nil reader with nil error
// means the table does not exist yet (no species data ever committed).
func (r *Repo) readerFor(tree string) (reader, func(), error) {
	idx := r.router.Place(tree)
	if tab := r.tabs[idx]; tab != nil {
		return tab, func() {}, nil
	}
	sn := r.dbs[idx].Snapshot()
	tab, err := sn.Table(tableName)
	if errors.Is(err, relstore.ErrNoTable) {
		sn.Close()
		return nil, func() {}, nil
	}
	if err != nil {
		sn.Close()
		return nil, nil, err
	}
	return tab, sn.Close, nil
}

func key(tree, sp, kind string) string { return tree + "/" + sp + "/" + kind }

func validPart(s string) error {
	if s == "" {
		return fmt.Errorf("%w: empty", ErrBadKey)
	}
	if strings.ContainsRune(s, '/') {
		return fmt.Errorf("%w: %q contains '/'", ErrBadKey, s)
	}
	return nil
}

// Put stores (replacing) one record of species data, e.g. kind
// "seq:smallsubunit" or "trait:eyecolor".
func (r *Repo) Put(tree, sp, kind string, data []byte) error {
	for _, part := range []string{tree, sp, kind} {
		if err := validPart(part); err != nil {
			return err
		}
	}
	tab, err := r.writeTabFor(tree)
	if err != nil {
		return err
	}
	return tab.Put(relstore.Row{
		relstore.Str(key(tree, sp, kind)),
		relstore.Str(tree),
		relstore.Str(sp),
		relstore.Str(kind),
		relstore.Blob(data),
	})
}

// reader is the read surface Get and List need; both the live table
// (lock-per-operation) and a snapshot view (lock-free) satisfy it.
type reader interface {
	Get(key relstore.Value) (relstore.Row, bool, error)
	IndexScan(index string, vals []relstore.Value, fn func(relstore.Row) (bool, error)) error
}

func getRecord(tab reader, tree, sp, kind string) ([]byte, error) {
	row, ok, err := tab.Get(relstore.Str(key(tree, sp, kind)))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoData, key(tree, sp, kind))
	}
	return row[4].Bytes(), nil
}

func listRecords(tab reader, tree, sp string) ([]Record, error) {
	var out []Record
	err := tab.IndexScan("by_species", []relstore.Value{relstore.Str(tree), relstore.Str(sp)},
		func(row relstore.Row) (bool, error) {
			out = append(out, Record{
				Tree:    row[1].Text(),
				Species: row[2].Text(),
				Kind:    row[3].Text(),
				Data:    row[4].Bytes(),
			})
			return true, nil
		})
	return out, err
}

// Get fetches one record. On a replica repository the read runs against a
// fresh snapshot of the owning shard (the live handle is unresolved).
func (r *Repo) Get(tree, sp, kind string) ([]byte, error) {
	tab, release, err := r.readerFor(tree)
	if err != nil {
		return nil, err
	}
	defer release()
	if tab == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoData, key(tree, sp, kind))
	}
	return getRecord(tab, tree, sp, kind)
}

// Record is one stored species-data item.
type Record struct {
	Tree    string
	Species string
	Kind    string
	Data    []byte
}

// List returns all records for one species of one tree. Like Get it
// falls back to a snapshot read on a replica repository.
func (r *Repo) List(tree, sp string) ([]Record, error) {
	tab, release, err := r.readerFor(tree)
	if err != nil {
		return nil, err
	}
	defer release()
	if tab == nil {
		return nil, nil
	}
	return listRecords(tab, tree, sp)
}

// View is a read-only snapshot view of the species repository: Get and
// List run lock-free against the epoch the snapshot pinned, so they never
// wait behind a bulk load or delete. Records are routed to the snapshot of
// the shard that owns their tree. Tables are resolved lazily — a snapshot
// taken before the repository's first commit simply has no data.
type View struct {
	sns    []*relstore.Snap
	router *shard.Router
}

// ViewOn binds a species view to a relational snapshot (shared with the
// tree and query repositories).
func ViewOn(rs *relstore.Snap) *View {
	return &View{sns: []*relstore.Snap{rs}, router: shard.Single}
}

// ViewOnShards binds a species view to one relational snapshot per shard.
func ViewOnShards(sns []*relstore.Snap, router *shard.Router) *View {
	return &View{sns: sns, router: router}
}

func (v *View) readerFor(tree string) (reader, error) {
	tab, err := v.sns[v.router.Place(tree)].Table(tableName)
	if errors.Is(err, relstore.ErrNoTable) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return tab, nil
}

// Get fetches one record as of the snapshot.
func (v *View) Get(tree, sp, kind string) ([]byte, error) {
	tab, err := v.readerFor(tree)
	if err != nil {
		return nil, err
	}
	if tab == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoData, key(tree, sp, kind))
	}
	return getRecord(tab, tree, sp, kind)
}

// List returns all records for one species of one tree as of the snapshot.
func (v *View) List(tree, sp string) ([]Record, error) {
	tab, err := v.readerFor(tree)
	if err != nil || tab == nil {
		return nil, err
	}
	return listRecords(tab, tree, sp)
}

// Delete removes one record, reporting whether it existed.
func (r *Repo) Delete(tree, sp, kind string) (bool, error) {
	tab, err := r.writeTabFor(tree)
	if err != nil {
		return false, err
	}
	return tab.Delete(relstore.Str(key(tree, sp, kind)))
}

// DeleteTree removes all species data of one tree.
func (r *Repo) DeleteTree(tree string) (int, error) {
	tab, err := r.writeTabFor(tree)
	if err != nil {
		return 0, err
	}
	var keys []string
	err = tab.IndexScan("by_tree", []relstore.Value{relstore.Str(tree)}, func(row relstore.Row) (bool, error) {
		keys = append(keys, row[0].Text())
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if _, err := tab.Delete(relstore.Str(k)); err != nil {
			return 0, err
		}
	}
	return len(keys), nil
}

// PutAlignment stores every sequence of an alignment under the given kind
// ("append species data to an existing phylogenetic tree" in the demo's
// loading options). Returns the number of sequences stored.
func (r *Repo) PutAlignment(tree, kind string, aln *seqsim.Alignment) (int, error) {
	for _, name := range aln.Names {
		if err := r.Put(tree, name, kind, aln.Seqs[name]); err != nil {
			return 0, err
		}
	}
	return len(aln.Names), nil
}

// Alignment reassembles an alignment for the given species names from
// records of the given kind.
func (r *Repo) Alignment(tree, kind string, names []string) (*seqsim.Alignment, error) {
	aln := &seqsim.Alignment{Seqs: make(map[string][]byte, len(names))}
	for _, name := range names {
		data, err := r.Get(tree, name, kind)
		if err != nil {
			return nil, err
		}
		aln.Names = append(aln.Names, name)
		aln.Seqs[name] = data
	}
	return aln, nil
}
