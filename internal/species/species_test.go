package species

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/relstore"
	"repro/internal/seqsim"
)

func newRepo(t *testing.T) *Repo {
	t.Helper()
	db := relstore.OpenMemDB()
	t.Cleanup(func() { db.Close() })
	r, err := NewOnDB(db)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPutGetDelete(t *testing.T) {
	r := newRepo(t)
	if err := r.Put("gold", "Bha", "seq:ssu", []byte("ACGTACGT")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("gold", "Bha", "seq:ssu")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ACGTACGT" {
		t.Fatalf("got %q", got)
	}
	// Replace.
	if err := r.Put("gold", "Bha", "seq:ssu", []byte("TTTT")); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Get("gold", "Bha", "seq:ssu")
	if string(got) != "TTTT" {
		t.Fatalf("after replace: %q", got)
	}
	ok, err := r.Delete("gold", "Bha", "seq:ssu")
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, err := r.Get("gold", "Bha", "seq:ssu"); !errors.Is(err, ErrNoData) {
		t.Fatalf("Get after delete = %v", err)
	}
	if ok, _ := r.Delete("gold", "Bha", "seq:ssu"); ok {
		t.Fatal("double delete reported true")
	}
}

func TestKeyValidation(t *testing.T) {
	r := newRepo(t)
	if err := r.Put("", "a", "b", nil); err == nil {
		t.Fatal("empty tree accepted")
	}
	if err := r.Put("t", "a/b", "c", nil); err == nil {
		t.Fatal("slash in species accepted")
	}
}

func TestListBySpecies(t *testing.T) {
	r := newRepo(t)
	r.Put("gold", "Bha", "seq:ssu", []byte("AAAA"))
	r.Put("gold", "Bha", "trait:eyecolor", []byte("brown"))
	r.Put("gold", "Lla", "seq:ssu", []byte("CCCC"))
	r.Put("other", "Bha", "seq:ssu", []byte("GGGG"))

	recs, err := r.List("gold", "Bha")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("List = %d records", len(recs))
	}
	kinds := map[string]bool{}
	for _, rec := range recs {
		if rec.Tree != "gold" || rec.Species != "Bha" {
			t.Fatalf("bad record %+v", rec)
		}
		kinds[rec.Kind] = true
	}
	if !kinds["seq:ssu"] || !kinds["trait:eyecolor"] {
		t.Fatalf("kinds = %v", kinds)
	}
	// A species with no data lists empty.
	recs, err = r.List("gold", "Missing")
	if err != nil || len(recs) != 0 {
		t.Fatalf("List missing = %v, %v", recs, err)
	}
}

func TestDeleteTree(t *testing.T) {
	r := newRepo(t)
	r.Put("gold", "Bha", "seq:a", []byte("A"))
	r.Put("gold", "Lla", "seq:a", []byte("C"))
	r.Put("keep", "Bha", "seq:a", []byte("G"))
	n, err := r.DeleteTree("gold")
	if err != nil || n != 2 {
		t.Fatalf("DeleteTree = %d, %v", n, err)
	}
	if _, err := r.Get("gold", "Bha", "seq:a"); err == nil {
		t.Fatal("gold data survived")
	}
	if _, err := r.Get("keep", "Bha", "seq:a"); err != nil {
		t.Fatalf("keep data lost: %v", err)
	}
}

func TestAlignmentRoundTrip(t *testing.T) {
	r := newRepo(t)
	aln := &seqsim.Alignment{
		Names: []string{"Bha", "Lla", "Syn"},
		Seqs: map[string][]byte{
			"Bha": []byte("ACGT"),
			"Lla": []byte("AGGT"),
			"Syn": []byte("ACGA"),
		},
	}
	n, err := r.PutAlignment("gold", "seq:sim", aln)
	if err != nil || n != 3 {
		t.Fatalf("PutAlignment = %d, %v", n, err)
	}
	got, err := r.Alignment("gold", "seq:sim", []string{"Lla", "Syn"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names) != 2 || !bytes.Equal(got.Seqs["Lla"], []byte("AGGT")) {
		t.Fatalf("alignment = %+v", got)
	}
	if _, err := r.Alignment("gold", "seq:sim", []string{"Ghost"}); err == nil {
		t.Fatal("missing species accepted")
	}
}

func TestLargeSequencesPersist(t *testing.T) {
	// Sequences "with thousands of characters" must survive the overflow
	// page path end to end.
	r := newRepo(t)
	big := make([]byte, 30_000)
	for i := range big {
		big[i] = "ACGT"[i%4]
	}
	if err := r.Put("gold", "Bha", "seq:genome", big); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("gold", "Bha", "seq:genome")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large sequence corrupted")
	}
}
