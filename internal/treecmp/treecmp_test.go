package treecmp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/newick"
	"repro/internal/phylo"
	"repro/internal/project"
)

func mustParse(t *testing.T, s string) *phylo.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return tr
}

func TestClades(t *testing.T) {
	tr := mustParse(t, "((A:1,B:1):1,(C:1,D:1):1);")
	c := Clades(tr)
	if len(c) != 2 {
		t.Fatalf("clades = %v", c)
	}
	if !c["A\x00B"] || !c["C\x00D"] {
		t.Fatalf("clades = %v", c)
	}
}

func TestRobinsonFoulds(t *testing.T) {
	a := mustParse(t, "((A:1,B:1):1,(C:1,D:1):1);")
	b := mustParse(t, "((A:1,C:1):1,(B:1,D:1):1);")
	d, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 { // {AB},{CD} vs {AC},{BD}: all four differ
		t.Fatalf("RF = %d, want 4", d)
	}
	same, err := RobinsonFoulds(a, a.Clone())
	if err != nil || same != 0 {
		t.Fatalf("RF(self) = %d, %v", same, err)
	}
	norm, err := NormalizedRF(a, b)
	if err != nil || norm != 1.0 {
		t.Fatalf("NormalizedRF = %g, %v", norm, err)
	}
	// Child order and edge lengths are ignored.
	c := mustParse(t, "((D:9,C:9):9,(B:9,A:9):9);")
	d, err = RobinsonFoulds(a, c)
	if err != nil || d != 0 {
		t.Fatalf("RF ignoring order/lengths = %d, %v", d, err)
	}
	// Different leaf sets are an error.
	e := mustParse(t, "((A:1,B:1):1,(C:1,E:1):1);")
	if _, err := RobinsonFoulds(a, e); err == nil {
		t.Fatal("leaf mismatch accepted")
	}
}

func TestRFPartialOverlap(t *testing.T) {
	a := mustParse(t, "(((A:1,B:1):1,C:1):1,D:1);")
	b := mustParse(t, "((A:1,B:1):1,(C:1,D:1):1);")
	d, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// a: {AB}, {ABC}; b: {AB}, {CD} -> symmetric difference {ABC},{CD} = 2.
	if d != 2 {
		t.Fatalf("RF = %d, want 2", d)
	}
}

// TestPatternMatchPaperExample follows §2.2: "the tree pattern shown in
// Figure 2 will match the tree shown in Figure 1. However if we exchange
// the location of species Bha and Lla in the pattern tree, the new pattern
// will not match the tree."
func TestPatternMatchPaperExample(t *testing.T) {
	tr := phylo.PaperFigure1()
	ix, err := core.Build(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	planner := project.NewPlanner(tr, ix)

	// Figure 2 pattern: (Syn,(Lla,Bha)).
	pattern := mustParse(t, "(Syn:2.5,(Lla:2.5,Bha:0.75):0.5);")
	res, err := PatternMatch(planner, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.RF != 0 {
		t.Fatalf("Figure 2 pattern does not match: %+v", res)
	}
	// Exchange Bha and Lla's positions: (Lla,(Syn... no — swap the leaves
	// across the interior node: (Bha,(Lla,Syn)).
	swapped := mustParse(t, "(Bha:1,(Lla:1,Syn:1):1);")
	res, err = PatternMatch(planner, swapped)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("swapped pattern unexpectedly matches")
	}
	if res.RF == 0 || res.Normalized <= 0 {
		t.Fatalf("similarity not reported: %+v", res)
	}
}

func TestPatternMatchUnknownLeaf(t *testing.T) {
	tr := phylo.PaperFigure1()
	planner := project.NewPlanner(tr, project.NaiveLCA{})
	pattern := mustParse(t, "(Ghost:1,Syn:1);")
	if _, err := PatternMatch(planner, pattern); err == nil {
		t.Fatal("pattern with unknown species matched")
	}
}

func TestTripletDistance(t *testing.T) {
	a := mustParse(t, "((A:1,B:1):1,C:1);")
	b := mustParse(t, "((A:1,C:1):1,B:1);")
	d, err := TripletDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1.0 { // single triplet, resolved differently
		t.Fatalf("triplet distance = %g, want 1", d)
	}
	same, err := TripletDistance(a, a.Clone())
	if err != nil || same != 0 {
		t.Fatalf("triplet self distance = %g, %v", same, err)
	}
	// Star vs resolved: unresolved (3) vs pair (0) disagree.
	star := mustParse(t, "(A:1,B:1,C:1);")
	d, err = TripletDistance(star, a)
	if err != nil || d != 1.0 {
		t.Fatalf("star vs resolved = %g, %v", d, err)
	}
	// Fewer than 3 leaves: distance 0.
	two := mustParse(t, "(A:1,B:1);")
	two2 := mustParse(t, "(B:1,A:1);")
	if d, err := TripletDistance(two, two2); err != nil || d != 0 {
		t.Fatalf("2-leaf distance = %g, %v", d, err)
	}
}

func TestMajorityConsensus(t *testing.T) {
	t1 := mustParse(t, "(((A:1,B:1):1,C:1):1,(D:1,E:1):1);")
	t2 := mustParse(t, "(((A:1,B:1):1,C:1):1,(D:1,E:1):1);")
	t3 := mustParse(t, "(((A:1,C:1):1,B:1):1,(D:1,E:1):1);")
	cons, err := MajorityConsensus([]*phylo.Tree{t1, t2, t3})
	if err != nil {
		t.Fatal(err)
	}
	got := Clades(cons)
	// {AB} and {ABC} and {DE} appear in 2 of 3; {AC}, {ACB} appear once.
	for _, want := range []string{"A\x00B", "A\x00B\x00C", "D\x00E"} {
		if !got[want] {
			t.Fatalf("consensus missing clade %q: %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("consensus clades = %v", got)
	}
	if err := cons.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityConsensusSingle(t *testing.T) {
	t1 := mustParse(t, "((A:1,B:1):1,C:1);")
	cons, err := MajorityConsensus([]*phylo.Tree{t1})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := RobinsonFoulds(cons, t1); d != 0 {
		t.Fatalf("consensus of one tree differs: RF=%d", d)
	}
}

func TestMajorityConsensusErrors(t *testing.T) {
	if _, err := MajorityConsensus(nil); err == nil {
		t.Fatal("empty consensus succeeded")
	}
	a := mustParse(t, "(A:1,B:1);")
	b := mustParse(t, "(A:1,C:1);")
	if _, err := MajorityConsensus([]*phylo.Tree{a, b}); err == nil {
		t.Fatal("mismatched leaf sets accepted")
	}
}
