// Package treecmp compares phylogenetic trees: exact topology match, the
// Robinson–Foulds (clade symmetric-difference) distance used to score
// reconstruction algorithms against the gold standard, triplet distance,
// and the linear-time majority-rule consensus the paper cites (reference
// [1], Amenta, Clarke & St. John, WABI 2003). It also implements the tree
// pattern match query of §2.2: project the target tree over the pattern's
// leaves and compare.
package treecmp

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/phylo"
	"repro/internal/project"
)

// ErrLeafMismatch is returned when two trees being compared do not share
// the same leaf set.
var ErrLeafMismatch = errors.New("treecmp: trees have different leaf sets")

// Clades returns the set of non-trivial clades (clusters) of a rooted
// tree: for every interior node other than the root, the sorted set of
// leaf names below it, encoded as a canonical string key.
func Clades(t *phylo.Tree) map[string]bool {
	out := make(map[string]bool)
	var walk func(n *phylo.Node) []string
	walk = func(n *phylo.Node) []string {
		if n.IsLeaf() {
			return []string{n.Name}
		}
		var names []string
		for _, c := range n.Children {
			names = append(names, walk(c)...)
		}
		sort.Strings(names)
		if n.Parent != nil && len(names) >= 2 {
			out[strings.Join(names, "\x00")] = true
		}
		return names
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

// RobinsonFoulds returns the Robinson–Foulds distance between two rooted
// trees over the same leaf set: the size of the symmetric difference of
// their clade sets. Lower is more similar; 0 means identical topology
// (ignoring edge lengths and child order).
func RobinsonFoulds(a, b *phylo.Tree) (int, error) {
	if !sameLeafSet(a, b) {
		return 0, ErrLeafMismatch
	}
	ca, cb := Clades(a), Clades(b)
	d := 0
	for k := range ca {
		if !cb[k] {
			d++
		}
	}
	for k := range cb {
		if !ca[k] {
			d++
		}
	}
	return d, nil
}

// NormalizedRF returns RF scaled into [0,1] by the maximum possible
// distance (the total number of non-trivial clades in both trees). Two
// identical topologies score 0; trees sharing no clades score 1.
func NormalizedRF(a, b *phylo.Tree) (float64, error) {
	d, err := RobinsonFoulds(a, b)
	if err != nil {
		return 0, err
	}
	max := len(Clades(a)) + len(Clades(b))
	if max == 0 {
		return 0, nil
	}
	return float64(d) / float64(max), nil
}

func sameLeafSet(a, b *phylo.Tree) bool {
	la, lb := a.LeafNames(), b.LeafNames()
	if len(la) != len(lb) {
		return false
	}
	set := make(map[string]bool, len(la))
	for _, n := range la {
		set[n] = true
	}
	for _, n := range lb {
		if !set[n] {
			return false
		}
	}
	return true
}

// Bipartitions returns the non-trivial bipartitions (splits) induced by
// the internal edges of a tree, viewed as unrooted. Each split is encoded
// canonically as the sorted leaf names of the side NOT containing the
// lexicographically smallest leaf.
func Bipartitions(t *phylo.Tree) map[string]bool {
	all := t.LeafNames()
	if len(all) < 4 {
		return map[string]bool{}
	}
	ref := all[0]
	for _, n := range all {
		if n < ref {
			ref = n
		}
	}
	total := len(all)
	out := make(map[string]bool)
	var walk func(n *phylo.Node) []string
	walk = func(n *phylo.Node) []string {
		if n.IsLeaf() {
			return []string{n.Name}
		}
		var names []string
		for _, c := range n.Children {
			names = append(names, walk(c)...)
		}
		// An internal edge above n splits names | rest. Skip trivial
		// splits (|side| < 2) and the root's non-edge.
		if n.Parent != nil && len(names) >= 2 && total-len(names) >= 2 {
			side := names
			if containsName(side, ref) {
				side = complement(all, side)
			}
			sorted := append([]string(nil), side...)
			sort.Strings(sorted)
			out[strings.Join(sorted, "\x00")] = true
		}
		return names
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

func containsName(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func complement(all, side []string) []string {
	in := make(map[string]bool, len(side))
	for _, s := range side {
		in[s] = true
	}
	var out []string
	for _, a := range all {
		if !in[a] {
			out = append(out, a)
		}
	}
	return out
}

// RobinsonFouldsUnrooted is the symmetric difference of the two trees'
// split sets — the standard score for algorithms (like Neighbor-Joining)
// whose output rooting is arbitrary.
func RobinsonFouldsUnrooted(a, b *phylo.Tree) (int, error) {
	if !sameLeafSet(a, b) {
		return 0, ErrLeafMismatch
	}
	sa, sb := Bipartitions(a), Bipartitions(b)
	d := 0
	for k := range sa {
		if !sb[k] {
			d++
		}
	}
	for k := range sb {
		if !sa[k] {
			d++
		}
	}
	return d, nil
}

// NormalizedRFUnrooted scales the unrooted RF distance into [0,1].
func NormalizedRFUnrooted(a, b *phylo.Tree) (float64, error) {
	d, err := RobinsonFouldsUnrooted(a, b)
	if err != nil {
		return 0, err
	}
	max := len(Bipartitions(a)) + len(Bipartitions(b))
	if max == 0 {
		return 0, nil
	}
	return float64(d) / float64(max), nil
}

// MatchResult reports the outcome of a tree pattern match.
type MatchResult struct {
	Exact      bool    // projected tree and pattern are topologically equal
	RF         int     // Robinson–Foulds distance between them
	Normalized float64 // RF scaled to [0,1]
	Projected  *phylo.Tree
}

// PatternMatch answers the paper's tree pattern match query: determine the
// leaves of the pattern, project the target tree over that leaf set, then
// check whether the projected tree equals the pattern (exact match) or
// compute the difference as a similarity measure (approximate match).
// Topology only; edge lengths are not compared.
func PatternMatch(planner *project.Planner, pattern *phylo.Tree) (*MatchResult, error) {
	projected, err := planner.ProjectNames(pattern.LeafNames())
	if err != nil {
		return nil, fmt.Errorf("treecmp: projecting pattern leaves: %w", err)
	}
	rf, err := RobinsonFoulds(projected, pattern)
	if err != nil {
		return nil, err
	}
	norm, err := NormalizedRF(projected, pattern)
	if err != nil {
		return nil, err
	}
	return &MatchResult{Exact: rf == 0, RF: rf, Normalized: norm, Projected: projected}, nil
}

// TripletDistance counts resolved leaf triplets on which the two trees
// disagree, divided by the total number of triplets. It is O(k^3) in the
// number of leaves and intended for the modest sample sizes the benchmark
// manager works with.
func TripletDistance(a, b *phylo.Tree) (float64, error) {
	if !sameLeafSet(a, b) {
		return 0, ErrLeafMismatch
	}
	names := a.LeafNames()
	sort.Strings(names)
	if len(names) < 3 {
		return 0, nil
	}
	disagree, total := 0, 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			for k := j + 1; k < len(names); k++ {
				ra := resolveTriplet(a, names[i], names[j], names[k])
				rb := resolveTriplet(b, names[i], names[j], names[k])
				total++
				if ra != rb {
					disagree++
				}
			}
		}
	}
	return float64(disagree) / float64(total), nil
}

// resolveTriplet returns which pair of {x,y,z} is closest (joined below
// the triplet's root): 0 for xy, 1 for xz, 2 for yz, 3 for unresolved.
func resolveTriplet(t *phylo.Tree, x, y, z string) int {
	nx, ny, nz := t.NodeByName(x), t.NodeByName(y), t.NodeByName(z)
	lxy := phylo.LCA(nx, ny)
	lxz := phylo.LCA(nx, nz)
	lyz := phylo.LCA(ny, nz)
	dxy, dxz, dyz := phylo.Depth(lxy), phylo.Depth(lxz), phylo.Depth(lyz)
	switch {
	case dxy > dxz && dxy > dyz:
		return 0
	case dxz > dxy && dxz > dyz:
		return 1
	case dyz > dxy && dyz > dxz:
		return 2
	}
	return 3
}

// MajorityConsensus builds the majority-rule consensus of the given trees
// (all over the same leaf set): the tree containing exactly the clades
// that occur in more than half of the inputs (reference [1] of the
// paper). Edge lengths of the consensus are left at zero.
func MajorityConsensus(trees []*phylo.Tree) (*phylo.Tree, error) {
	if len(trees) == 0 {
		return nil, errors.New("treecmp: consensus of zero trees")
	}
	for _, t := range trees[1:] {
		if !sameLeafSet(trees[0], t) {
			return nil, ErrLeafMismatch
		}
	}
	counts := make(map[string]int)
	for _, t := range trees {
		for c := range Clades(t) {
			counts[c]++
		}
	}
	var majority [][]string
	for c, n := range counts {
		if 2*n > len(trees) {
			majority = append(majority, strings.Split(c, "\x00"))
		}
	}
	// Majority clades are pairwise compatible, so ordering by decreasing
	// size lets us build the tree by inserting each clade under the
	// smallest enclosing one.
	sort.Slice(majority, func(i, j int) bool { return len(majority[i]) > len(majority[j]) })

	names := trees[0].LeafNames()
	sort.Strings(names)
	root := &phylo.Node{}
	owner := make(map[string]*phylo.Node) // leaf name -> current deepest node
	for _, n := range names {
		owner[n] = root
	}
	for _, clade := range majority {
		parent := owner[clade[0]]
		node := &phylo.Node{}
		parent.AddChild(node)
		for _, leaf := range clade {
			if owner[leaf] != parent {
				return nil, fmt.Errorf("treecmp: incompatible majority clades (leaf %s)", leaf)
			}
			owner[leaf] = node
		}
	}
	for _, name := range names {
		owner[name].AddChild(&phylo.Node{Name: name})
	}
	t := phylo.New(root)
	t.SortChildren()
	t.Reindex()
	return t, nil
}
